// Co-location bus: slot lifecycle, seqlock coherence under a concurrent
// writer, heartbeat staleness, and crash robustness (stale-pid slot
// reclamation after SIGKILL; cross-process EqualShare convergence).
//
// The multi-process cases fork() real children — the bus exists precisely
// to survive peers dying without cleanup, so the tests kill children with
// SIGKILL and assert the survivors' view.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/ipc/colocation_bus.hpp"
#include "src/ipc/equal_share.hpp"

namespace {

using namespace rubic;
using namespace std::chrono;
using std::chrono::steady_clock;

std::string unique_name(const char* tag) {
  static std::atomic<int> counter{0};
  return "/rubic-test-" + std::string(tag) + "-" +
         std::to_string(static_cast<int>(getpid())) + "-" +
         std::to_string(counter.fetch_add(1));
}

// Removes the segment when the test scope ends, pass or fail.
struct Unlinker {
  std::string name;
  ~Unlinker() { ipc::CoLocationBus::unlink(name); }
};

ipc::BusConfig test_config(const std::string& name, int contexts = 8,
                           int max_slots = 4) {
  ipc::BusConfig config;
  config.name = name;
  config.contexts = contexts;
  config.max_slots = max_slots;
  return config;
}

// Spins until `predicate` holds or `limit` elapses.
template <typename Predicate>
bool eventually(Predicate predicate, milliseconds limit = seconds(10)) {
  const auto deadline = steady_clock::now() + limit;
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return predicate();
}

TEST(IpcBus, AcquireReleaseRoundTrip) {
  const std::string name = unique_name("acquire");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(test_config(name));

  EXPECT_FALSE(bus->has_slot());
  const int slot = bus->acquire_slot("me");
  ASSERT_GE(slot, 0);
  EXPECT_TRUE(bus->has_slot());
  // Idempotent: a second acquire returns the held slot.
  EXPECT_EQ(bus->acquire_slot("me"), slot);

  const auto peers = bus->snapshot();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].pid, getpid());
  EXPECT_EQ(peers[0].state, ipc::PeerState::kAlive);
  EXPECT_STREQ(peers[0].payload.label, "me");
  EXPECT_EQ(bus->live_count(), 1);

  bus->release_slot();
  EXPECT_FALSE(bus->has_slot());
  EXPECT_TRUE(bus->snapshot().empty());
  EXPECT_EQ(bus->acquire_slot("again"), slot);
}

TEST(IpcBus, AttachSeesCreatorGeometryAndFullBusRejects) {
  const std::string name = unique_name("attach");
  Unlinker cleanup{name};
  auto creator =
      ipc::CoLocationBus::create_or_attach(test_config(name, 16, 1));
  // Attacher passes different geometry; the existing segment wins.
  auto attacher =
      ipc::CoLocationBus::create_or_attach(test_config(name, 64, 8));
  EXPECT_EQ(attacher->contexts(), 16);
  EXPECT_EQ(attacher->max_slots(), 1);

  ASSERT_EQ(creator->acquire_slot("first"), 0);
  // The single slot is held by a live process (ourselves): no reclamation.
  EXPECT_EQ(attacher->acquire_slot("second"), -1);
}

TEST(IpcBus, SeqlockRejectsTornReadsUnderWriter) {
  const std::string name = unique_name("seqlock");
  Unlinker cleanup{name};
  auto writer_bus = ipc::CoLocationBus::create_or_attach(test_config(name));
  auto reader_bus = ipc::CoLocationBus::create_or_attach(test_config(name));
  ASSERT_GE(writer_bus->acquire_slot("writer"), 0);

  // The writer maintains the invariant heartbeat == tasks_completed ==
  // commits (publish() bumps the heartbeat once per call). Any read that
  // mixed two publishes would break it; the seqlock must either reject the
  // read (torn) or deliver a coherent triple.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++i;
      ipc::SlotSample sample;
      sample.level = static_cast<int>(i % 64);
      sample.tasks_completed = i;
      sample.commits = i;
      writer_bus->publish(sample);
    }
  });

  std::uint64_t coherent_reads = 0;
  const auto deadline = steady_clock::now() + milliseconds(300);
  while (steady_clock::now() < deadline) {
    const auto peers = reader_bus->snapshot();
    ASSERT_EQ(peers.size(), 1u);
    if (peers[0].torn) continue;  // rejected — exactly the contract
    ++coherent_reads;
    EXPECT_EQ(peers[0].payload.heartbeat, peers[0].payload.tasks_completed);
    EXPECT_EQ(peers[0].payload.heartbeat, peers[0].payload.commits);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(coherent_reads, 0u);
}

TEST(IpcBus, StaleHeartbeatExpires) {
  const std::string name = unique_name("stale");
  Unlinker cleanup{name};
  auto config = test_config(name);
  config.stale_after = milliseconds(40);
  auto bus = ipc::CoLocationBus::create_or_attach(config);
  ASSERT_GE(bus->acquire_slot("beater"), 0);
  bus->publish({});
  EXPECT_EQ(bus->live_count(), 1);

  // Stop beating; the same live pid must drop out of the live count.
  ASSERT_TRUE(eventually([&] {
    const auto peers = bus->snapshot();
    return peers.size() == 1 && peers[0].state == ipc::PeerState::kStale;
  }));
  EXPECT_EQ(bus->live_count(), 0);

  // One publish resurrects it.
  bus->publish({});
  EXPECT_EQ(bus->live_count(), 1);
}

TEST(IpcBus, FinishedPeerStopsCountingTowardShares) {
  const std::string name = unique_name("finished");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(test_config(name));
  ASSERT_GE(bus->acquire_slot("done-soon"), 0);
  ipc::FinalSample final_sample;
  final_sample.final_level = 3;
  final_sample.mean_level = 2.5;
  final_sample.tasks_per_second = 123.0;
  bus->publish_final(final_sample);

  const auto peers = bus->snapshot();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].state, ipc::PeerState::kFinished);
  EXPECT_EQ(peers[0].payload.final_level, 3);
  EXPECT_DOUBLE_EQ(peers[0].payload.tasks_per_second, 123.0);
  EXPECT_EQ(bus->live_count(), 0);
}

// A child claims the only slot, is SIGKILLed (no cleanup of any kind), and
// the next acquisition must reclaim the slot via the dead-pid probe. This
// is both the crash case and the "launcher restart" case — a restarted
// launcher finds the previous generation's pids dead the same way.
TEST(IpcBus, ReclaimsSlotOfSigkilledChild) {
  const std::string name = unique_name("sigkill");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(test_config(name, 8, 1));

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: claim the slot, then hang until killed. _exit codes (not
    // ASSERTs) — this is not the gtest process anymore.
    auto child_bus =
        ipc::CoLocationBus::create_or_attach(test_config(name, 8, 1));
    if (child_bus->acquire_slot("victim") != 0) _exit(1);
    child_bus->publish({});
    for (;;) pause();
  }

  ASSERT_TRUE(eventually([&] {
    const auto peers = bus->snapshot();
    return peers.size() == 1 && peers[0].pid == child;
  }));
  // Bus full of a live peer: no slot for us.
  EXPECT_EQ(bus->acquire_slot("survivor"), -1);

  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The pid is gone; acquisition reclaims the slot in-place.
  EXPECT_EQ(bus->acquire_slot("survivor"), 0);
  const auto peers = bus->snapshot();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].pid, getpid());
  EXPECT_STREQ(peers[0].payload.label, "survivor");
  EXPECT_EQ(peers[0].state, ipc::PeerState::kAlive);
}

// The §4.3 acceptance scenario: two real processes under bus-EqualShare
// must each settle at contexts / 2. Children sample their controller only
// once both are registered, so every sample must be exactly the fair share.
TEST(IpcBus, EqualShareAcrossProcesses) {
  const std::string name = unique_name("eqshare");
  Unlinker cleanup{name};
  constexpr int kContexts = 8;
  auto bus =
      ipc::CoLocationBus::create_or_attach(test_config(name, kContexts));

  auto spawn = [&]() -> pid_t {
    const pid_t pid = fork();
    if (pid != 0) return pid;
    // Child: register, wait for the sibling, then sample the share.
    auto child_bus =
        ipc::CoLocationBus::create_or_attach(test_config(name, kContexts));
    if (child_bus->acquire_slot("eq") < 0) _exit(2);
    ipc::BusEqualShareController controller(*child_bus);
    const auto deadline = steady_clock::now() + seconds(10);
    while (child_bus->live_count() < 2) {
      if (steady_clock::now() > deadline) _exit(3);
      child_bus->publish({});
      std::this_thread::sleep_for(milliseconds(2));
    }
    double level_sum = 0;
    constexpr int kRounds = 20;
    for (int round = 0; round < kRounds; ++round) {
      ipc::SlotSample sample;
      sample.level = controller.on_sample(100.0);
      level_sum += sample.level;
      child_bus->publish(sample);
      std::this_thread::sleep_for(milliseconds(5));
    }
    const double mean_level = level_sum / kRounds;
    // Both processes are alive the whole time: the share is exactly N/2.
    _exit(mean_level == kContexts / 2 ? 0 : 4);
  };

  const pid_t a = spawn();
  ASSERT_GE(a, 0);
  const pid_t b = spawn();
  ASSERT_GE(b, 0);
  for (const pid_t child : {a, b}) {
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child " << child;
  }
}

// Slot lifecycle under sustained churn: generations of children claim
// both slots of a 2-slot bus, are SIGKILLed with no cleanup, and the next
// generation must reclaim in-place. Every slot is reused at least twice.
// Invariants per generation: the peer table never exceeds max_slots (no
// slot leak), and a reclaimed slot carries the new owner's pid and label —
// never the dead generation's stale payload.
TEST(IpcBus, SlotChurnReclaimsWithoutLeaksOrStaleAdoption) {
  const std::string name = unique_name("churn");
  Unlinker cleanup{name};
  constexpr int kContexts = 8;
  constexpr int kSlots = 2;
  auto config = test_config(name, kContexts, kSlots);

  auto bus = ipc::CoLocationBus::create_or_attach(config);
  std::array<int, kSlots> reuses{};  // generations seen per slot beyond the first

  constexpr int kGenerations = 3;
  for (int generation = 0; generation < kGenerations; ++generation) {
    std::array<pid_t, kSlots> children{};
    for (int i = 0; i < kSlots; ++i) {
      const pid_t pid = fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        auto child_bus = ipc::CoLocationBus::create_or_attach(config);
        const std::string label =
            "gen" + std::to_string(generation) + "-" + std::to_string(i);
        if (child_bus->acquire_slot(label) < 0) _exit(2);
        for (;;) {
          child_bus->publish({});
          std::this_thread::sleep_for(milliseconds(2));
        }
      }
      children[i] = pid;
    }

    // Both children of this generation must surface as live peers.
    ASSERT_TRUE(eventually([&] {
      const auto peers = bus->snapshot();
      int live = 0;
      for (const auto& peer : peers) {
        for (const pid_t pid : children) {
          if (peer.pid == pid && peer.state == ipc::PeerState::kAlive) ++live;
        }
      }
      return live == kSlots;
    })) << "generation " << generation;

    const auto peers = bus->snapshot();
    ASSERT_LE(peers.size(), static_cast<std::size_t>(kSlots))
        << "slot leak in generation " << generation;
    const std::string expected_prefix = "gen" + std::to_string(generation);
    for (const auto& peer : peers) {
      // Fresh ownership: current pid, current generation's label. A stale
      // payload adopted from a dead generation would fail both.
      EXPECT_TRUE(peer.pid == children[0] || peer.pid == children[1])
          << "generation " << generation << " kept dead pid " << peer.pid;
      EXPECT_EQ(std::string(peer.payload.label).rfind(expected_prefix, 0), 0u)
          << "slot " << peer.slot << " shows stale label '"
          << peer.payload.label << "' in generation " << generation;
      if (generation > 0) ++reuses[static_cast<std::size_t>(peer.slot)];
    }
    // The bus is full of live peers: no slot for anyone else.
    EXPECT_EQ(bus->acquire_slot("outsider"), -1);

    for (const pid_t pid : children) {
      ASSERT_EQ(kill(pid, SIGKILL), 0);
      int status = 0;
      ASSERT_EQ(waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFSIGNALED(status));
    }
  }
  for (int slot = 0; slot < kSlots; ++slot) {
    EXPECT_GE(reuses[static_cast<std::size_t>(slot)], 2)
        << "slot " << slot << " never churned";
  }

  // After all that churn, arbitration is undisturbed: the parent and one
  // fresh child split the machine exactly in half under EqualShare.
  ASSERT_GE(bus->acquire_slot("closer"), 0);
  ipc::BusEqualShareController controller(*bus);
  const pid_t peer = fork();
  ASSERT_GE(peer, 0);
  if (peer == 0) {
    auto child_bus = ipc::CoLocationBus::create_or_attach(config);
    if (child_bus->acquire_slot("closer-peer") < 0) _exit(2);
    for (;;) {
      child_bus->publish({});
      std::this_thread::sleep_for(milliseconds(2));
    }
  }
  ASSERT_TRUE(eventually([&] {
    bus->publish({});
    return controller.on_sample(100.0) == kContexts / 2;
  }));
  ASSERT_EQ(kill(peer, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(peer, &status, 0), peer);
}

// When one of the co-located processes is killed, the survivor's share
// grows from contexts/2 back to contexts once the victim's pid vanishes —
// survivors keep tuning without any cleanup step.
TEST(IpcBus, EqualShareRecoversAfterPeerDeath) {
  const std::string name = unique_name("eqrecover");
  Unlinker cleanup{name};
  constexpr int kContexts = 8;
  auto config = test_config(name, kContexts);
  config.stale_after = milliseconds(60);
  auto bus = ipc::CoLocationBus::create_or_attach(config);
  ASSERT_GE(bus->acquire_slot("survivor"), 0);
  ipc::BusEqualShareController controller(*bus);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto child_bus = ipc::CoLocationBus::create_or_attach(config);
    if (child_bus->acquire_slot("victim") < 0) _exit(2);
    for (;;) {
      child_bus->publish({});
      std::this_thread::sleep_for(milliseconds(5));
    }
  }

  ASSERT_TRUE(eventually([&] {
    bus->publish({});
    return controller.on_sample(100.0) == kContexts / 2;
  }));

  ASSERT_EQ(kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  ASSERT_TRUE(eventually([&] {
    bus->publish({});
    return controller.on_sample(100.0) == kContexts;
  }));
}

}  // namespace

// Controller tests: the cubic growth function of Eq. (1), a line-by-line
// state-machine trace of Algorithm 2 (RUBIC), and the behaviour of every
// baseline policy (EBS/AIAD, F2C2, AIMD, Greedy, EqualShare).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/control/aimd.hpp"
#include "src/control/cubic_function.hpp"
#include "src/control/ebs.hpp"
#include "src/control/f2c2.hpp"
#include "src/control/factory.hpp"
#include "src/control/fixed.hpp"
#include "src/control/rubic.hpp"

namespace rubic::control {
namespace {

constexpr LevelBounds kBounds{1, 128};

// ---------- Equation (1) ----------

TEST(CubicFunction, TcpConsistentRestartsAtPostMdLevel) {
  const CubicParams p{0.8, 0.1, CubicMode::kTcpConsistent};
  for (double l_max : {8.0, 64.0, 100.0}) {
    // L(0) must equal α·L_max: the curve picks up exactly where the
    // multiplicative decrease left the level.
    EXPECT_NEAR(cubic_level(l_max, 0.0, p), p.alpha * l_max, 1e-9) << l_max;
  }
}

TEST(CubicFunction, PaperLiteralRestartsLower) {
  const CubicParams p{0.8, 0.1, CubicMode::kPaperLiteral};
  // Literal Eq. (1): L(0) = L_max − α·L_max = (1−α)·L_max — the printed
  // formula disagrees with the MD step (DESIGN.md D1).
  EXPECT_NEAR(cubic_level(64.0, 0.0, p), 0.2 * 64.0, 1e-9);
}

TEST(CubicFunction, PlateauAtLmax) {
  const CubicParams p{0.8, 0.1, CubicMode::kTcpConsistent};
  const double k = cubic_plateau_offset(64.0, p);
  EXPECT_NEAR(cubic_level(64.0, k, p), 64.0, 1e-9);
  // Growth slows approaching the plateau and accelerates past it (Fig. 4).
  const double before = cubic_level(64.0, k - 1.0, p);
  const double just_after = cubic_level(64.0, k + 1.0, p);
  const double later = cubic_level(64.0, k + 5.0, p);
  EXPECT_LT(64.0 - before, 1.0) << "steady-state: nearly flat below L_max";
  EXPECT_LT(just_after - 64.0, 1.0) << "steady-state: nearly flat above L_max";
  EXPECT_GT(later - 64.0, 10.0) << "probing: accelerating past L_max";
}

TEST(CubicFunction, MonotonicallyIncreasingInDt) {
  const CubicParams p{0.8, 0.1, CubicMode::kTcpConsistent};
  double prev = cubic_level(32.0, 0.0, p);
  for (double dt = 0.5; dt < 20.0; dt += 0.5) {
    const double cur = cubic_level(32.0, dt, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

// ---------- Algorithm 2 state machine ----------

TEST(Rubic, InitialStatePerAlgorithm2Line1) {
  RubicController c(kBounds);
  EXPECT_EQ(c.initial_level(), 1);
  EXPECT_EQ(c.growth_phase(), RubicController::GrowthPhase::kCubic);
  EXPECT_EQ(c.reduction_phase(), RubicController::ReductionPhase::kLinear);
  EXPECT_DOUBLE_EQ(c.l_max(), 1.0);
  EXPECT_DOUBLE_EQ(c.dt_max(), 0.0);
}

TEST(Rubic, GrowthInterleavesCubicAndLinear) {
  RubicController c(kBounds);
  // Monotonically improving throughput: growth phases must alternate
  // CUBIC → LINEAR → CUBIC → ... (§3.2: compare adjacent levels).
  double throughput = 100.0;
  for (int round = 0; round < 10; ++round) {
    const bool was_cubic =
        c.growth_phase() == RubicController::GrowthPhase::kCubic;
    c.on_sample(throughput);
    const bool is_cubic =
        c.growth_phase() == RubicController::GrowthPhase::kCubic;
    EXPECT_NE(was_cubic, is_cubic) << "round " << round;
    throughput += 10.0;
  }
}

TEST(Rubic, GrowthIsAtLeastPlusOne) {
  RubicController c(kBounds);
  int level = c.initial_level();
  double throughput = 100.0;
  for (int round = 0; round < 20; ++round) {
    const int next = c.on_sample(throughput);
    EXPECT_GE(next, level + 1) << "line 11: max(L_cubic, L+1), round " << round;
    level = next;
    throughput += 1.0;
  }
}

TEST(Rubic, ProbingAcceleratesCubically) {
  // With L_max stuck at 1 and no losses, the probing phase must reach a
  // 64-context machine's capacity within a few dozen 10ms rounds — this is
  // the "impressively fast" initial convergence of Fig. 10c.
  RubicController c(kBounds);
  double throughput = 1.0;
  int rounds = 0;
  int level = 1;
  while (level < 64 && rounds < 40) {
    level = c.on_sample(throughput);
    throughput += 1.0;
    ++rounds;
  }
  EXPECT_GE(level, 64) << "probing took " << rounds << " rounds";
  EXPECT_LT(rounds, 40);
}

TEST(Rubic, FirstLossIsLinearMinusTwo) {
  RubicController c(kBounds);
  c.on_sample(100.0);  // grow
  c.on_sample(110.0);
  c.on_sample(120.0);
  const int before = c.level();
  const int after = c.on_sample(50.0);  // loss
  EXPECT_EQ(after, before - 2) << "line 31: linear reduction first";
  EXPECT_EQ(c.reduction_phase(),
            RubicController::ReductionPhase::kMultiplicative)
      << "line 32: MD armed for a persisting loss";
  EXPECT_EQ(c.growth_phase(), RubicController::GrowthPhase::kLinear)
      << "line 34";
  EXPECT_DOUBLE_EQ(c.dt_max(), 0.0) << "line 25";
}

TEST(Rubic, PersistingLossTriggersMultiplicativeDecrease) {
  RubicController c(kBounds);
  // Drive the level up to a known point.
  for (int i = 0; i < 12; ++i) c.on_sample(100.0 + i);
  const int peak = c.level();
  ASSERT_GT(peak, 10);

  // Loss 1: linear −2, T_p cleared.
  const int after_linear = c.on_sample(10.0);
  EXPECT_EQ(after_linear, peak - 2);

  // Observation round: T_p == 0 forces the increase path (line 5 with
  // T_c >= 0) and must NOT disarm the pending MD (line 17 guard).
  const int after_observation = c.on_sample(9.0);
  EXPECT_EQ(after_observation, after_linear + 1)
      << "growth was LINEAR after a reduction (line 34)";
  EXPECT_EQ(c.reduction_phase(),
            RubicController::ReductionPhase::kMultiplicative)
      << "T_p == 0 round must keep the MD armed";

  // Loss persists: multiplicative decrease to α·L, L_max remembered.
  const int before_md = c.level();
  const int after_md = c.on_sample(5.0);
  EXPECT_EQ(after_md,
            static_cast<int>(std::llround(c.params().alpha * before_md)))
      << "line 28";
  EXPECT_DOUBLE_EQ(c.l_max(), before_md) << "line 27";
  EXPECT_EQ(c.reduction_phase(), RubicController::ReductionPhase::kLinear)
      << "line 29";
}

TEST(Rubic, RecoveryDisarmsPendingMultiplicativeDecrease) {
  RubicController c(kBounds);
  for (int i = 0; i < 12; ++i) c.on_sample(100.0 + i);
  c.on_sample(10.0);  // loss → linear −2, MD armed
  c.on_sample(50.0);  // observation round (T_p was 0): MD stays armed
  ASSERT_EQ(c.reduction_phase(),
            RubicController::ReductionPhase::kMultiplicative);
  c.on_sample(60.0);  // genuine improvement over T_p=50: line 17 disarms MD
  EXPECT_EQ(c.reduction_phase(), RubicController::ReductionPhase::kLinear);
  // The next loss must therefore be linear again, not multiplicative.
  const int before = c.level();
  EXPECT_EQ(c.on_sample(1.0), before - 2);
}

TEST(Rubic, SteadyStateHoversNearLmax) {
  // After an MD at L_max, alternating good rounds keep the level governed
  // by the cubic plateau: it re-approaches L_max quickly, then crawls.
  RubicController c(kBounds);
  for (int i = 0; i < 14; ++i) c.on_sample(100.0);  // probe upwards
  // Force an MD cycle at a known L_max.
  c.on_sample(10.0);  // linear
  c.on_sample(10.0);  // observation (T_p=0 → increase), MD armed
  c.on_sample(5.0);   // multiplicative: L_max = level before this round
  const double l_max = c.l_max();
  ASSERT_GT(l_max, 8.0);
  // Recovery: throughput is flat-good again; within ~K rounds the level is
  // back near L_max and stays within a small band for a while.
  int level = c.level();
  for (int i = 0; i < 8; ++i) level = c.on_sample(100.0);
  EXPECT_GT(level, static_cast<int>(0.9 * l_max));
  EXPECT_LT(level, static_cast<int>(l_max) + 6);
}

TEST(Rubic, ClampsToBounds) {
  RubicController c(LevelBounds{1, 8});
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(c.on_sample(100.0 + i), 8);
  }
  EXPECT_EQ(c.level(), 8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(c.on_sample(i % 2 == 0 ? 1.0 : 0.5), 1);
  }
}

TEST(Rubic, ResetRestoresInitialState) {
  RubicController c(kBounds);
  for (int i = 0; i < 10; ++i) c.on_sample(100.0 + i);
  c.on_sample(1.0);
  c.reset();
  EXPECT_EQ(c.level(), 1);
  EXPECT_DOUBLE_EQ(c.l_max(), 1.0);
  EXPECT_DOUBLE_EQ(c.dt_max(), 0.0);
  EXPECT_EQ(c.growth_phase(), RubicController::GrowthPhase::kCubic);
  EXPECT_EQ(c.reduction_phase(), RubicController::ReductionPhase::kLinear);
}

// ---------- baselines ----------

TEST(Ebs, HillClimbsByOne) {
  EbsController c(kBounds);
  EXPECT_EQ(c.on_sample(10.0), 2);  // tie/improvement over T_p=0
  EXPECT_EQ(c.on_sample(20.0), 3);
  EXPECT_EQ(c.on_sample(15.0), 2);  // loss → −1
  EXPECT_EQ(c.on_sample(15.0), 3);  // tie counts as non-loss (>= rule)
}

TEST(Ebs, PlateauDriftsUpward) {
  // The `>=` tie rule makes AIAD policies greedy on flat plateaus — the
  // mechanism behind the paper's oversubscription races (§4.6).
  EbsController c(kBounds);
  for (int i = 0; i < 30; ++i) c.on_sample(42.0);
  EXPECT_EQ(c.level(), 31);
}

TEST(Ebs, ClampsAtBothEnds) {
  EbsController c(LevelBounds{1, 4});
  for (int i = 0; i < 10; ++i) c.on_sample(100.0);
  EXPECT_EQ(c.level(), 4);
  double t = 100.0;
  for (int i = 0; i < 10; ++i) c.on_sample(t -= 1.0);
  EXPECT_EQ(c.level(), 1);
}

TEST(F2c2, ExponentialThenHalveThenAiad) {
  F2c2Controller c(kBounds);
  EXPECT_EQ(c.on_sample(10.0), 2);
  EXPECT_EQ(c.on_sample(20.0), 4);
  EXPECT_EQ(c.on_sample(30.0), 8);
  EXPECT_EQ(c.on_sample(40.0), 16);
  EXPECT_TRUE(c.in_exponential_phase());
  EXPECT_EQ(c.on_sample(35.0), 8) << "first loss halves";
  EXPECT_FALSE(c.in_exponential_phase());
  EXPECT_EQ(c.on_sample(36.0), 9) << "then pure AIAD";
  EXPECT_EQ(c.on_sample(30.0), 8);
}

TEST(F2c2, ExponentialPhaseCapsAtPool) {
  F2c2Controller c(LevelBounds{1, 100});
  int level = 1;
  for (int i = 0; i < 12; ++i) level = c.on_sample(100.0 + i);
  EXPECT_EQ(level, 100) << "doubling clamps at the pool size";
  EXPECT_TRUE(c.in_exponential_phase());
}

TEST(Aimd, AlphaHalvesOnLoss) {
  AimdController c(kBounds, 0.5);
  for (int i = 0; i < 63; ++i) c.on_sample(100.0 + i);
  EXPECT_EQ(c.level(), 64);
  EXPECT_EQ(c.on_sample(1.0), 32) << "multiplicative drop to α·L";
  EXPECT_EQ(c.on_sample(50.0), 33) << "back to additive growth";
}

TEST(Aimd, RejectsBadAlpha) {
  EXPECT_DEATH(AimdController(kBounds, 1.5), "alpha");
}

TEST(Fixed, GreedyPinsToContexts) {
  auto c = make_greedy(64);
  EXPECT_EQ(c->initial_level(), 64);
  EXPECT_EQ(c->on_sample(1.0), 64);
  EXPECT_EQ(c->on_sample(1000.0), 64);
  EXPECT_EQ(c->name(), "Greedy");
}

TEST(EqualShare, TracksProcessCount) {
  auto allocator = std::make_shared<CentralAllocator>(64);
  EqualShareController c1(allocator), c2(allocator);
  allocator->register_process();
  EXPECT_EQ(c1.on_sample(0.0), 64);
  allocator->register_process();
  EXPECT_EQ(c1.on_sample(0.0), 32);
  EXPECT_EQ(c2.on_sample(0.0), 32);
  allocator->unregister_process();
  EXPECT_EQ(c2.on_sample(0.0), 64);
}

TEST(EqualShare, NeverBelowOne) {
  auto allocator = std::make_shared<CentralAllocator>(4);
  for (int i = 0; i < 8; ++i) allocator->register_process();
  EXPECT_EQ(allocator->share(), 1);
}

// ---------- factory ----------

TEST(Factory, BuildsEveryEvaluatedPolicy) {
  PolicyConfig cfg;
  cfg.contexts = 64;
  cfg.allocator = std::make_shared<CentralAllocator>(64);
  for (const auto policy : evaluated_policies()) {
    auto c = make_controller(policy, cfg);
    ASSERT_NE(c, nullptr) << policy;
    EXPECT_GE(c->initial_level(), 1) << policy;
  }
  EXPECT_NE(make_controller("aimd", cfg), nullptr);
  EXPECT_NE(make_controller("aiad", cfg), nullptr);
}

TEST(Factory, PoolDefaultsToTwiceContexts) {
  PolicyConfig cfg;
  cfg.contexts = 64;
  auto c = make_controller("ebs", cfg);
  for (int i = 0; i < 300; ++i) c->on_sample(100.0 + i);
  EXPECT_EQ(c->on_sample(1000.0), 128) << "adaptive cap is the pool size";
}

TEST(Factory, UnknownPolicyThrows) {
  EXPECT_THROW(make_controller("does-not-exist", PolicyConfig{}),
               std::invalid_argument);
}

TEST(Factory, EqualShareRequiresAllocator) {
  EXPECT_THROW(make_controller("equalshare", PolicyConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace rubic::control

// USL fitting tests: parameter recovery from clean and noisy samples of
// every built-in profile, degenerate inputs, and round-tripping a fitted
// curve through the machine model.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/sim/machine_model.hpp"
#include "src/sim/usl_fit.hpp"
#include "src/sim/workload_profiles.hpp"
#include "src/util/rng.hpp"

namespace rubic::sim {
namespace {

std::vector<std::pair<double, double>> sample_curve(
    const ScalabilityCurve& curve, double noise_sigma = 0.0,
    std::uint64_t seed = 1) {
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<double, double>> samples;
  for (int level = 1; level <= 64; level += 3) {
    double s = curve.speedup(level);
    if (noise_sigma > 0) s *= 1.0 + noise_sigma * rng.normal();
    samples.emplace_back(level, s);
  }
  return samples;
}

class UslFitRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(UslFitRecovery, CleanSamplesReproduceCurveShape) {
  const auto profile = profile_by_name(GetParam());
  const auto samples = sample_curve(*profile.curve);
  const UslFit fit = fit_extended_usl(samples);
  EXPECT_LT(fit.relative_rmse, 0.02) << GetParam();
  // The fitted curve must reproduce the peak location (the only feature
  // the controllers actually depend on) within a small margin.
  const auto fitted = fit.curve();
  EXPECT_NEAR(fitted.peak_level(64), profile.curve->peak_level(64),
              std::max(2, profile.curve->peak_level(64) / 5))
      << GetParam();
  // And the speed-up values across the range.
  for (int level : {2, 8, 24, 48, 64}) {
    EXPECT_NEAR(fitted.speedup(level), profile.curve->speedup(level),
                0.05 * profile.curve->speedup(level) + 0.05)
        << GetParam() << " level " << level;
  }
}

TEST_P(UslFitRecovery, NoisySamplesStillFindThePeak) {
  const auto profile = profile_by_name(GetParam());
  const auto samples = sample_curve(*profile.curve, 0.03, 7);
  const UslFit fit = fit_extended_usl(samples);
  EXPECT_LT(fit.relative_rmse, 0.08) << GetParam();
  const auto fitted = fit.curve();
  EXPECT_NEAR(fitted.peak_level(64), profile.curve->peak_level(64),
              std::max(3, profile.curve->peak_level(64) / 4))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, UslFitRecovery,
                         ::testing::Values("intruder", "vacation", "rbt",
                                           "rbt-readonly"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(UslFit, LinearSpeedupFitsNearZeroParameters) {
  std::vector<std::pair<double, double>> samples;
  for (int level = 1; level <= 32; ++level) {
    samples.emplace_back(level, static_cast<double>(level));
  }
  const UslFit fit = fit_extended_usl(samples);
  EXPECT_LT(fit.relative_rmse, 0.01);
  EXPECT_NEAR(fit.curve().speedup(32.0), 32.0, 1.0);
}

TEST(UslFit, RejectsTooFewSamples) {
  const std::vector<std::pair<double, double>> samples{{1.0, 1.0}, {2.0, 1.9}};
  EXPECT_DEATH((void)fit_extended_usl(samples), "3 samples");
}

TEST(UslFit, FittedCurveDrivesTheMachineModel) {
  // End-to-end: fit Intruder's curve from samples, build a profile around
  // it, and check the machine model reproduces the dedicated throughputs.
  const auto reference = intruder_profile();
  const UslFit fit = fit_extended_usl(sample_curve(*reference.curve));
  const auto fitted_curve = std::make_shared<ExtendedUslCurve>(fit.curve());
  const WorkloadProfile fitted{"fitted-intruder", fitted_curve,
                               reference.sequential_rate,
                               reference.oversub_delta};
  MachineModel machine(64);
  for (int level : {1, 7, 32, 64}) {
    EXPECT_NEAR(machine.throughput(fitted, level, level),
                machine.throughput(reference, level, level),
                0.06 * machine.throughput(reference, level, level))
        << level;
  }
}

}  // namespace
}  // namespace rubic::sim

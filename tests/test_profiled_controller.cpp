// Tests for the profile-then-pin controller (related work, §5): sweep
// mechanics, pinning at the measured optimum, and — the paper's critique —
// blindness to post-profiling workload changes and arrivals.
#include <gtest/gtest.h>

#include "src/control/profiled.hpp"
#include "src/sim/sim_system.hpp"

namespace rubic::control {
namespace {

TEST(Profiled, GeometricSweepThenPin) {
  ProfiledController c(LevelBounds{1, 16}, /*rounds_per_level=*/2);
  // Synthetic unimodal response peaking at level 8.
  auto respond = [](int level) {
    return level <= 8 ? 100.0 * level : 100.0 * (16 - level);
  };
  int level = c.initial_level();
  for (int round = 0; round < 200 && !c.profiling_done(); ++round) {
    level = c.on_sample(respond(level));
  }
  ASSERT_TRUE(c.profiling_done()) << "sweep must terminate";
  EXPECT_EQ(c.pinned_level(), 8);
  // Pinned forever, regardless of feedback.
  EXPECT_EQ(c.on_sample(0.0), 8);
  EXPECT_EQ(c.on_sample(1e9), 8);
}

TEST(Profiled, RefinementFindsOffGridOptimum) {
  // Peak at 5 — not a power of two; the ±refinement probes must find a
  // better level than the geometric grid alone (4 or 8).
  ProfiledController c(LevelBounds{1, 16}, 2);
  auto respond = [](int level) {
    return 100.0 - 10.0 * std::abs(level - 5);
  };
  int level = c.initial_level();
  for (int round = 0; round < 200 && !c.profiling_done(); ++round) {
    level = c.on_sample(respond(level));
  }
  ASSERT_TRUE(c.profiling_done());
  EXPECT_NEAR(c.pinned_level(), 5, 1);
}

TEST(Profiled, ResetRestartsProfiling) {
  ProfiledController c(LevelBounds{1, 8}, 1);
  for (int i = 0; i < 50; ++i) c.on_sample(100.0);
  ASSERT_TRUE(c.profiling_done());
  c.reset();
  EXPECT_FALSE(c.profiling_done());
  EXPECT_EQ(c.initial_level(), 1);
}

TEST(Profiled, FindsIntruderPeakInSimulator) {
  ProfiledController c(LevelBounds{1, 128}, 5);
  sim::SimProcessSpec spec{"p", sim::intruder_profile(), &c, 0.0,
                           std::numeric_limits<double>::infinity()};
  sim::SimConfig config;
  config.duration_s = 10.0;
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));
  ASSERT_TRUE(c.profiling_done());
  EXPECT_NEAR(c.pinned_level(), 7, 3)
      << "profiling must locate Intruder's scalability peak";
  (void)result;
}

TEST(Profiled, BlindToWorkloadChange) {
  // The §5 critique in one test: after the pin, a workload change leaves
  // the controller stuck at the stale level while RUBIC re-converges
  // (compare Convergence.RubicReconvergesAfterWorkloadShrink).
  ProfiledController c(LevelBounds{1, 128}, 5);
  sim::SimProcessSpec spec{"p", sim::rbt98_profile(), &c, 0.0,
                           std::numeric_limits<double>::infinity()};
  spec.change_s = 5.0;
  spec.profile_after = sim::intruder_profile();
  sim::SimConfig config;
  config.duration_s = 10.0;
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));
  ASSERT_TRUE(c.profiling_done());
  // Pinned at the rbt-ish optimum (high), far above Intruder's peak of 7.
  const auto& trace = result.processes[0].trace;
  EXPECT_EQ(trace.back().level, c.pinned_level());
  EXPECT_GT(c.pinned_level(), 20)
      << "profiled against the scalable workload";
}

}  // namespace
}  // namespace rubic::control

// Figure-regression tests: the paper's headline comparative results, run at
// reduced repetition counts, asserted as ordering/band constraints. These
// lock the reproduction into CI — a change to a controller, curve or the
// machine model that silently flips a figure's conclusion fails here.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "src/sim/experiment.hpp"

namespace rubic::sim {
namespace {

class FigureRegression : public ::testing::Test {
 protected:
  // Reduced reps keep the whole suite fast; the aggregates at 10 reps are
  // within a few percent of the 50-rep values (deterministic seeds).
  ExperimentConfig config_ = [] {
    ExperimentConfig config;
    config.repetitions = 10;
    return config;
  }();

  // Geomean NSBP across the paper's three pairs.
  double pairwise_geomean(const std::string& policy) {
    const char* const pairs[3][2] = {
        {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
    double product = 1;
    for (const auto& pair : pairs) {
      product *= run_pair(config_, policy, pair[0], pair[1]).nsbp.mean();
    }
    return std::cbrt(product);
  }
};

TEST_F(FigureRegression, Fig7aPolicyOrdering) {
  std::map<std::string, double> geomean;
  for (const char* policy : {"greedy", "equalshare", "f2c2", "ebs", "rubic"}) {
    geomean[policy] = pairwise_geomean(policy);
  }
  // Paper ordering: RUBIC > EBS ≥ F2C2 > EqualShare > Greedy.
  EXPECT_GT(geomean["rubic"], geomean["ebs"]);
  EXPECT_GT(geomean["rubic"], geomean["f2c2"]);
  EXPECT_GE(geomean["ebs"], 0.95 * geomean["f2c2"])
      << "EBS and F2C2 are near-identical policies; EBS must not trail far";
  EXPECT_GT(geomean["f2c2"], geomean["equalshare"]);
  EXPECT_GT(geomean["equalshare"], geomean["greedy"]);
}

TEST_F(FigureRegression, Fig7aHeadlineMargins) {
  const double rubic = pairwise_geomean("rubic");
  const double ebs = pairwise_geomean("ebs");
  const double greedy = pairwise_geomean("greedy");
  // Paper: +26% over the second best; our reproduction band is 15-35%.
  const double vs_ebs = rubic / ebs - 1.0;
  EXPECT_GT(vs_ebs, 0.10) << "RUBIC's margin over EBS collapsed";
  EXPECT_LT(vs_ebs, 0.45) << "margin implausibly large — model drifted";
  // Paper: +500% over Greedy; our harsher oversubscription model gives
  // more. Anything below 4x would mean Greedy stopped being pathological.
  EXPECT_GT(rubic / greedy, 4.0);
}

TEST_F(FigureRegression, Fig7aRubicBestOnEveryPair) {
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  for (const auto& pair : pairs) {
    const double rubic =
        run_pair(config_, "rubic", pair[0], pair[1]).nsbp.mean();
    for (const char* policy : {"greedy", "equalshare", "f2c2", "ebs"}) {
      EXPECT_GT(rubic,
                run_pair(config_, policy, pair[0], pair[1]).nsbp.mean())
          << pair[0] << "/" << pair[1] << " vs " << policy;
    }
  }
}

TEST_F(FigureRegression, Fig7bOnlyRubicRespectsTheLine) {
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  for (const auto& pair : pairs) {
    const auto rubic = run_pair(config_, "rubic", pair[0], pair[1]);
    EXPECT_LT(rubic.total_threads.mean(), 66.0)
        << pair[0] << "/" << pair[1];
  }
  // And at least one baseline pair violates it (the F2C2 Int/RBT race).
  const auto f2c2 = run_pair(config_, "f2c2", "intruder", "rbt");
  EXPECT_GT(f2c2.total_threads.mean(), 66.0);
}

TEST_F(FigureRegression, Fig7cRubicMostEfficient) {
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  for (const auto& pair : pairs) {
    const auto rubic = run_pair(config_, "rubic", pair[0], pair[1]);
    for (const char* policy : {"greedy", "equalshare", "f2c2", "ebs"}) {
      const auto other = run_pair(config_, policy, pair[0], pair[1]);
      EXPECT_GT(rubic.efficiency_product.mean(),
                other.efficiency_product.mean())
          << pair[0] << "/" << pair[1] << " vs " << policy;
    }
  }
}

TEST_F(FigureRegression, Fig9RubicComparableToBestSingleProcess) {
  for (const char* workload : {"vacation", "intruder", "rbt"}) {
    double best = 0;
    double rubic = 0;
    for (const char* policy : {"greedy", "f2c2", "ebs", "rubic"}) {
      const double speedup =
          run_single(config_, policy, workload).processes[0].speedup.mean();
      best = std::max(best, speedup);
      if (std::string(policy) == "rubic") rubic = speedup;
    }
    EXPECT_GT(rubic, 0.90 * best) << workload;
  }
}

TEST_F(FigureRegression, Fig9RubicMostStable) {
  for (const char* workload : {"vacation", "intruder", "rbt"}) {
    const double rubic_sd = run_single(config_, "rubic", workload)
                                .processes[0]
                                .mean_level.stddev();
    const double ebs_sd = run_single(config_, "ebs", workload)
                              .processes[0]
                              .mean_level.stddev();
    EXPECT_LT(rubic_sd, ebs_sd) << workload;
  }
}

}  // namespace
}  // namespace rubic::sim

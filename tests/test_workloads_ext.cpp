// Tests for the extension workloads: Genome (segment dedup), Kmeans
// (streaming clustering) and the non-transactional Monte-Carlo π workload —
// single-threaded ground-truth checks plus concurrent consistency runs,
// and an end-to-end TunedProcess run for each.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/workloads/genome/genome_workload.hpp"
#include "src/workloads/kmeans/kmeans_workload.hpp"
#include "src/workloads/montecarlo.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

namespace rubic::workloads {
namespace {

using namespace std::chrono_literals;

// ---------- genome ----------

genome::GenomeParams tiny_genome() {
  genome::GenomeParams params;
  params.genome_length = 2048;
  params.segment_length = 16;
  params.segment_count = 1024;
  return params;
}

TEST(Genome, SingleThreadEpochMatchesGroundTruth) {
  stm::Runtime rt;
  genome::GenomeWorkload workload(rt, tiny_genome());
  ASSERT_GT(workload.unique_expected(), 0);
  ASSERT_LT(workload.unique_expected(), 1024)
      << "sampling with replacement must produce duplicates";
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
  EXPECT_EQ(workload.segments_processed(), 1024);
}

TEST(Genome, ReplayEpochsStayConsistent) {
  stm::Runtime rt;
  genome::GenomeWorkload workload(rt, tiny_genome());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 3 * 1024; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Genome, ConcurrentDedupFindsExactUniqueCount) {
  stm::Runtime rt;
  genome::GenomeWorkload workload(rt, tiny_genome());
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(2);
      barrier.arrive_and_wait();
      for (int i = 0; i < 1024 / kThreads; ++i) workload.run_task(ctx, rng);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(workload.segments_processed(), 1024);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

// ---------- kmeans ----------

kmeans::KmeansParams tiny_kmeans() {
  kmeans::KmeansParams params;
  params.point_count = 512;
  params.dimensions = 2;
  params.clusters = 4;
  params.batch_size = 8;
  return params;
}

TEST(Kmeans, SingleThreadEpochFoldsExactly) {
  stm::Runtime rt;
  kmeans::KmeansWorkload workload(rt, tiny_kmeans());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  const int batches_per_epoch = 512 / 8;
  for (int i = 0; i < batches_per_epoch; ++i) workload.run_task(ctx, rng);
  EXPECT_EQ(workload.epochs_completed(), 1);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Kmeans, CentroidsConvergeTowardTrueCenters) {
  stm::Runtime rt;
  kmeans::KmeansWorkload workload(rt, tiny_kmeans());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  const int batches_per_epoch = 512 / 8;
  // After several epochs the centroids must stabilize: successive folds
  // barely move them (clustered data, 0.5σ noise).
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < batches_per_epoch; ++i) workload.run_task(ctx, rng);
  }
  const auto before = workload.unsafe_centroids();
  for (int i = 0; i < batches_per_epoch; ++i) workload.run_task(ctx, rng);
  const auto after = workload.unsafe_centroids();
  double total_shift = 0;
  for (std::size_t c = 0; c < before.size(); ++c) {
    for (std::size_t d = 0; d < before[c].size(); ++d) {
      total_shift += std::abs(after[c][d] - before[c][d]);
    }
  }
  EXPECT_LT(total_shift, 0.5) << "converged centroids must be nearly fixed";
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Kmeans, ConcurrentAccountingStaysExact) {
  stm::Runtime rt;
  kmeans::KmeansWorkload workload(rt, tiny_kmeans());
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(10 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < 200; ++i) workload.run_task(ctx, rng);
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
  EXPECT_GE(workload.epochs_completed(), 1);
}

// ---------- monte-carlo (non-transactional) ----------

TEST(MonteCarlo, EstimatesPi) {
  stm::Runtime rt;
  MonteCarloPiWorkload workload(4096);
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(123);
  for (int i = 0; i < 256; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
  EXPECT_NEAR(workload.pi_estimate(), 3.14159, 0.02);
}

TEST(MonteCarlo, RunsUnderTunedProcessWithoutTransactions) {
  // The paper's future-work claim (§6): any malleable application with a
  // measurable throughput can be RUBIC-tuned. Zero transactions here.
  stm::Runtime rt;
  MonteCarloPiWorkload workload(1024);
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(250ms);
  EXPECT_GT(report.tasks_completed, 50u);
  EXPECT_EQ(report.stm_stats.commits, 0u) << "genuinely non-transactional";
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

// ---------- end-to-end runs of the heavier workloads ----------

TEST(TunedProcessExt, GenomeUnderRubic) {
  stm::Runtime rt;
  genome::GenomeWorkload workload(rt, tiny_genome());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(300ms);
  EXPECT_GT(report.tasks_completed, 500u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(TunedProcessExt, KmeansUnderRubic) {
  stm::Runtime rt;
  kmeans::KmeansWorkload workload(rt, tiny_kmeans());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(300ms);
  EXPECT_GT(report.tasks_completed, 100u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(TunedProcessExt, VacationUnderRubic) {
  stm::Runtime rt;
  vacation::VacationWorkload workload(rt,
                                      vacation::VacationParams::tiny());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(300ms);
  EXPECT_GT(report.tasks_completed, 200u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::workloads

// Tests for the time-series / CSV module.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/metrics/timeseries.hpp"

namespace rubic::metrics {
namespace {

TEST(TimeSeries, AppendAndAccess) {
  TimeSeries series({"t", "level", "throughput"});
  series.append({0.0, 1.0, 100.0});
  series.append({0.01, 2.0, 190.0});
  EXPECT_EQ(series.rows(), 2u);
  EXPECT_EQ(series.columns(), 3u);
  EXPECT_DOUBLE_EQ(series.at(1, 1), 2.0);
  EXPECT_EQ(series.names()[2], "throughput");
}

TEST(TimeSeries, ColumnMeanWithWindow) {
  TimeSeries series({"t", "x"});
  for (int i = 0; i < 10; ++i) {
    series.append({i * 0.1, static_cast<double>(i)});
  }
  EXPECT_DOUBLE_EQ(series.column_mean(1), 4.5);
  // Window [0.5, 0.8): rows with t = 0.5, 0.6, 0.7 → x = 5, 6, 7.
  EXPECT_NEAR(series.column_mean(1, 0.499, 0.799), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(series.column_mean(1, 99.0, 100.0), 0.0) << "empty window";
}

TEST(TimeSeries, CsvRoundTrip) {
  TimeSeries series({"t", "a,b", "quo\"te"});
  series.append({0.5, -1.25, 3.0});
  std::ostringstream out;
  series.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("t,\"a,b\",\"quo\"\"te\"\n"), std::string::npos)
      << "header quoting: " << csv;
  EXPECT_NE(csv.find("0.5,-1.25,3\n"), std::string::npos) << csv;
}

TEST(TimeSeries, WritesFile) {
  TimeSeries series({"t", "x"});
  series.append({1.0, 2.0});
  const std::string path = ::testing::TempDir() + "/rubic_timeseries_test.csv";
  ASSERT_TRUE(series.write_csv_file(path));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "t,x");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(TimeSeries, MismatchedRowAborts) {
  TimeSeries series({"t", "x"});
  EXPECT_DEATH(series.append({1.0}), "row width");
}

}  // namespace
}  // namespace rubic::metrics

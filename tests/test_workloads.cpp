// Tests for the STAMP-style workloads: Vacation manager semantics and
// check_tables, Intruder stream/detector/reassembly, the transactional
// queue, and the RB-set workload driver — single-threaded functional tests
// plus concurrent consistency runs.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/util/spin_barrier.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"
#include "src/workloads/rbset_workload.hpp"
#include "src/tds/tqueue.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

namespace rubic::workloads {
namespace {

using vacation::Manager;
using vacation::ResourceType;

// ---------- transactional queue ----------

TEST(TQueue, FifoOrder) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  tds::TQueue<int> q;
  int items[3] = {1, 2, 3};
  stm::atomically(ctx, [&](stm::Txn& tx) {
    for (auto& item : items) q.enqueue(tx, &item);
  });
  EXPECT_EQ(q.unsafe_size(), 3);
  for (int expected = 1; expected <= 3; ++expected) {
    int* got = stm::atomically(ctx, [&](stm::Txn& tx) { return q.try_dequeue(tx); });
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expected);
  }
  EXPECT_EQ(stm::atomically(ctx, [&](stm::Txn& tx) { return q.try_dequeue(tx); }),
            nullptr);
  EXPECT_EQ(q.unsafe_size(), 0);
}

TEST(TQueue, ConcurrentProducersConsumers) {
  stm::Runtime rt;
  tds::TQueue<std::int64_t> q;
  constexpr int kProducers = 2, kConsumers = 2, kPerProducer = 500;
  std::vector<std::int64_t> values(kProducers * kPerProducer);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<std::int64_t>(i);
  std::atomic<std::int64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  util::SpinBarrier barrier(kProducers + kConsumers);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      stm::TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerProducer; ++i) {
        auto* item = &values[static_cast<std::size_t>(p * kPerProducer + i)];
        stm::atomically(ctx, [&](stm::Txn& tx) { q.enqueue(tx, item); });
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      stm::TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      while (consumed_count.load() < kProducers * kPerProducer) {
        auto* item =
            stm::atomically(ctx, [&](stm::Txn& tx) { return q.try_dequeue(tx); });
        if (item != nullptr) {
          consumed_sum.fetch_add(*item);
          consumed_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t expected = 0;
  for (auto v : values) expected += v;
  EXPECT_EQ(consumed_sum.load(), expected);
}

// ---------- vacation manager ----------

class ManagerTest : public ::testing::Test {
 protected:
  stm::Runtime rt_;
  stm::TxnDesc& ctx_ = rt_.register_thread();
  Manager mgr_;

  template <typename F>
  auto tx(F&& f) {
    return stm::atomically(ctx_, std::forward<F>(f));
  }
};

TEST_F(ManagerTest, AddAndQueryResource) {
  tx([&](stm::Txn& t) {
    EXPECT_TRUE(mgr_.add_resource(t, ResourceType::kCar, 7, 10, 99));
  });
  tx([&](stm::Txn& t) {
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kCar, 7), 10);
    EXPECT_EQ(mgr_.query_price(t, ResourceType::kCar, 7), 99);
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kFlight, 7), std::nullopt)
        << "relations must be independent per type";
  });
  EXPECT_TRUE(mgr_.check_tables());
}

TEST_F(ManagerTest, GrowExistingResourceUpdatesPrice) {
  tx([&](stm::Txn& t) { mgr_.add_resource(t, ResourceType::kRoom, 1, 5, 100); });
  tx([&](stm::Txn& t) { mgr_.add_resource(t, ResourceType::kRoom, 1, 3, 120); });
  tx([&](stm::Txn& t) {
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kRoom, 1), 8);
    EXPECT_EQ(mgr_.query_price(t, ResourceType::kRoom, 1), 120);
  });
  EXPECT_TRUE(mgr_.check_tables());
}

TEST_F(ManagerTest, DeleteResourceRespectsFreeUnits) {
  tx([&](stm::Txn& t) {
    mgr_.add_resource(t, ResourceType::kFlight, 2, 4, 10);
    mgr_.add_customer(t, 50);
    EXPECT_TRUE(mgr_.reserve(t, 50, ResourceType::kFlight, 2));
  });
  tx([&](stm::Txn& t) {
    EXPECT_FALSE(mgr_.delete_resource(t, ResourceType::kFlight, 2, 4))
        << "cannot retire units that are in use";
    EXPECT_TRUE(mgr_.delete_resource(t, ResourceType::kFlight, 2, 3));
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kFlight, 2), 0);
  });
  EXPECT_TRUE(mgr_.check_tables());
}

TEST_F(ManagerTest, ReserveDecrementsFreeTracksCustomer) {
  tx([&](stm::Txn& t) {
    mgr_.add_resource(t, ResourceType::kCar, 3, 2, 55);
    mgr_.add_customer(t, 9);
  });
  tx([&](stm::Txn& t) {
    EXPECT_TRUE(mgr_.reserve(t, 9, ResourceType::kCar, 3));
    EXPECT_TRUE(mgr_.reserve(t, 9, ResourceType::kCar, 3));
    EXPECT_FALSE(mgr_.reserve(t, 9, ResourceType::kCar, 3)) << "sold out";
    EXPECT_FALSE(mgr_.reserve(t, 777, ResourceType::kCar, 3)) << "no customer";
    EXPECT_FALSE(mgr_.reserve(t, 9, ResourceType::kCar, 999)) << "no resource";
  });
  EXPECT_TRUE(mgr_.check_tables());
}

TEST_F(ManagerTest, DeleteCustomerReleasesReservations) {
  tx([&](stm::Txn& t) {
    mgr_.add_resource(t, ResourceType::kCar, 1, 1, 30);
    mgr_.add_resource(t, ResourceType::kRoom, 2, 1, 70);
    mgr_.add_customer(t, 4);
    mgr_.reserve(t, 4, ResourceType::kCar, 1);
    mgr_.reserve(t, 4, ResourceType::kRoom, 2);
  });
  const auto released = tx([&](stm::Txn& t) { return mgr_.delete_customer(t, 4); });
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(*released, 100);
  tx([&](stm::Txn& t) {
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kCar, 1), 1);
    EXPECT_EQ(mgr_.query_free(t, ResourceType::kRoom, 2), 1);
    EXPECT_EQ(mgr_.delete_customer(t, 4), std::nullopt) << "already deleted";
  });
  EXPECT_TRUE(mgr_.check_tables());
}

TEST_F(ManagerTest, DuplicateCustomerRejected) {
  tx([&](stm::Txn& t) {
    EXPECT_TRUE(mgr_.add_customer(t, 1));
    EXPECT_FALSE(mgr_.add_customer(t, 1));
  });
}

// ---------- vacation workload end-to-end ----------

TEST(VacationWorkload, ConcurrentMixKeepsTablesConsistent) {
  stm::Runtime rt;
  vacation::VacationWorkload workload(rt, vacation::VacationParams::tiny());
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(42 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < 600; ++i) workload.run_task(ctx, rng);
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

// ---------- intruder ----------

TEST(IntruderStream, FragmentsReassembleToPayload) {
  intruder::StreamParams params;
  params.flow_count = 200;
  intruder::Stream stream(params);
  // Regroup fragments per flow and splice them in index order.
  std::vector<std::vector<const intruder::Packet*>> by_flow(
      static_cast<std::size_t>(params.flow_count));
  for (const auto& p : stream.packets()) {
    auto& frags = by_flow[static_cast<std::size_t>(p.flow_id)];
    frags.resize(static_cast<std::size_t>(p.fragment_count), nullptr);
    frags[static_cast<std::size_t>(p.fragment_index)] = &p;
  }
  for (std::int64_t id = 0; id < params.flow_count; ++id) {
    std::string assembled;
    for (const auto* p : by_flow[static_cast<std::size_t>(id)]) {
      ASSERT_NE(p, nullptr) << "missing fragment in flow " << id;
      assembled.append(p->data, p->length);
    }
    EXPECT_EQ(assembled, stream.flow(id).payload) << "flow " << id;
  }
}

TEST(IntruderStream, AttackFractionRoughlyMatches) {
  intruder::StreamParams params;
  params.flow_count = 4000;
  params.attack_pct = 10;
  intruder::Stream stream(params);
  const double fraction =
      static_cast<double>(stream.attack_flow_count()) /
      static_cast<double>(params.flow_count);
  EXPECT_NEAR(fraction, 0.10, 0.02);
}

TEST(IntruderDetector, FindsEverySignatureAndNoFalsePositives) {
  for (const auto sig : intruder::attack_signatures()) {
    EXPECT_TRUE(intruder::contains_attack(std::string("prefix ") +
                                          std::string(sig) + " suffix"));
  }
  EXPECT_FALSE(intruder::contains_attack("just some innocent lowercase text"));
  EXPECT_FALSE(intruder::contains_attack(""));
}

TEST(IntruderDetector, GroundTruthAgreesOnGeneratedFlows) {
  intruder::StreamParams params;
  params.flow_count = 1000;
  intruder::Stream stream(params);
  for (std::int64_t id = 0; id < params.flow_count; ++id) {
    EXPECT_EQ(intruder::contains_attack(stream.flow(id).payload),
              stream.flow(id).is_attack)
        << "flow " << id;
  }
}

TEST(IntruderWorkload, SingleThreadProcessesWholeEpochExactly) {
  stm::Runtime rt;
  intruder::StreamParams params;
  params.flow_count = 300;
  intruder::IntruderWorkload workload(rt, params);
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  const auto packet_count = workload.stream().packets().size();
  for (std::size_t i = 0; i < packet_count; ++i) workload.run_task(ctx, rng);
  EXPECT_EQ(workload.flows_completed(), params.flow_count);
  EXPECT_EQ(workload.attacks_found(), workload.stream().attack_flow_count());
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(IntruderWorkload, ConcurrentWorkersStayConsistent) {
  stm::Runtime rt;
  intruder::StreamParams params;
  params.flow_count = 400;
  intruder::IntruderWorkload workload(rt, params);
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  const auto packet_count = workload.stream().packets().size();
  // Two full epochs of packets split across the workers.
  const std::size_t tasks_per_thread = packet_count * 2 / kThreads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(7 + t);
      barrier.arrive_and_wait();
      for (std::size_t i = 0; i < tasks_per_thread; ++i) {
        workload.run_task(ctx, rng);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
  EXPECT_GE(workload.flows_completed(), params.flow_count)
      << "at least the first epoch must have fully completed";
}

// ---------- rbset workload ----------

TEST(RbSetWorkload, MixedOpsKeepInvariants) {
  stm::Runtime rt;
  RbSetWorkload workload(rt, RbSetParams::tiny());
  EXPECT_EQ(workload.tree().unsafe_size(), 512u);
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
  // 50% lookups / 25% insert / 25% erase: size stays in the same ballpark.
  EXPECT_GT(workload.tree().unsafe_size(), 200u);
  EXPECT_LT(workload.tree().unsafe_size(), 900u);
}

TEST(RbSetWorkload, ReadOnlyVariantNeverMutates) {
  stm::Runtime rt;
  RbSetParams params = RbSetParams::read_only();
  params.initial_size = 2048;
  RbSetWorkload workload(rt, params);
  const auto size_before = workload.tree().unsafe_size();
  const auto setup_stats = rt.aggregate_stats();
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) workload.run_task(ctx, rng);
  EXPECT_EQ(workload.tree().unsafe_size(), size_before);
  const auto stats = rt.aggregate_stats();
  EXPECT_EQ(stats.commits - setup_stats.commits,
            stats.read_only_commits - setup_stats.read_only_commits)
      << "100% look-up tasks must all be read-only commits";
}

}  // namespace
}  // namespace rubic::workloads

// Tests for the event-tracing layer (src/trace/): ring semantics (overflow
// drops oldest, exact drop counters), the disarmed fast path, concurrent
// writers (the TSan CI job runs this binary), byte-stable deterministic
// exporters, the JSONL round trip, and end-to-end integration with the
// malleable runtime (pool resizes and monitor rounds land in the trace).
#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/workloads/rbset_workload.hpp"

namespace rubic::trace {
namespace {

using namespace std::chrono_literals;

std::vector<Event> events_of(const Tracer& tracer) { return tracer.merged(); }

int count_type(const std::vector<Event>& events, EventType type) {
  int n = 0;
  for (const Event& e : events) {
    if (e.type == static_cast<std::uint16_t>(type)) ++n;
  }
  return n;
}

TEST(TraceDisarmed, EmitIsANoop) {
  ASSERT_EQ(armed(), nullptr);
  // Nothing to observe beyond "does not crash / does not allocate a ring":
  emit(EventType::kTxnCommit, 1, 2, 3.0);
  emit_at(42, EventType::kTxnAbort, 1, 2, 3.0);
  ASSERT_EQ(armed(), nullptr);
}

TEST(TraceRing, RecordsEventFields) {
  Tracer tracer;
  Armed armed_window(tracer);
  emit_at(120, EventType::kPoolResize, 1, 4, 0.0);
  emit_at(130, EventType::kMonitorRound, 0, 7, 2500.5);
  const auto events = events_of(tracer);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts_ns, 120u);
  EXPECT_EQ(events[0].type, static_cast<std::uint16_t>(EventType::kPoolResize));
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 4u);
  EXPECT_EQ(events[1].value, 2500.5);
  EXPECT_EQ(tracer.threads(), 1);
  EXPECT_EQ(tracer.total_written(), 2u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

TEST(TraceRing, OverflowDropsOldestAndCountsDrops) {
  Tracer tracer(TracerConfig{.ring_capacity = 8});
  ASSERT_EQ(tracer.ring_capacity(), 8u);
  Armed armed_window(tracer);
  for (std::uint64_t i = 0; i < 20; ++i) {
    emit_at(i, EventType::kTxnCommit, static_cast<std::uint32_t>(i), i, 0.0);
  }
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].written, 20u);
  EXPECT_EQ(traces[0].dropped, 12u);
  ASSERT_EQ(traces[0].events.size(), 8u);
  // The ring is a sliding window over the newest records: 12..19 survive,
  // oldest first.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(traces[0].events[i].ts_ns, 12 + i);
    EXPECT_EQ(traces[0].events[i].b, 12 + i);
  }
  EXPECT_EQ(tracer.total_dropped(), 12u);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(TracerConfig{.ring_capacity = 100});
  EXPECT_EQ(tracer.ring_capacity(), 128u);
}

TEST(TraceConcurrent, ManyWritersOneRingEach) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  Tracer tracer;  // default capacity 16384 < kPerThread: drops expected
  {
    Armed armed_window(tracer);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          emit(EventType::kTxnCommit, static_cast<std::uint32_t>(t), i,
               static_cast<double>(i));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(tracer.threads(), kThreads);
  EXPECT_EQ(tracer.total_written(), kThreads * kPerThread);
  const auto traces = tracer.drain();
  ASSERT_EQ(traces.size(), static_cast<std::size_t>(kThreads));
  for (const auto& trace : traces) {
    EXPECT_EQ(trace.written, kPerThread);
    EXPECT_EQ(trace.dropped, kPerThread - tracer.ring_capacity());
    ASSERT_EQ(trace.events.size(), tracer.ring_capacity());
    // Per-ring writes are the thread's own, in order, newest kept.
    const std::uint32_t owner = trace.events.front().a;
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
      EXPECT_EQ(trace.events[i].a, owner);
      EXPECT_EQ(trace.events[i].b, kPerThread - tracer.ring_capacity() + i);
    }
  }
}

TEST(TraceExport, JsonlIsByteStableAcrossTracers) {
  const auto feed = [](Tracer& tracer) {
    Armed armed_window(tracer);
    emit_at(1000, EventType::kTxnBegin, 3, 1, 0.0);
    emit_at(1500, EventType::kTxnCommit, 3, 17, 0.0);
    emit_at(2000, EventType::kLevelDecision, 1, 2, 1234.5);
    emit_at(2500, EventType::kPhaseChange, 2, 0, 7.25);
  };
  Tracer one, two;
  feed(one);
  feed(two);
  EXPECT_EQ(to_jsonl(one), to_jsonl(two));
  EXPECT_EQ(to_chrome_trace(one, 42, "p0"), to_chrome_trace(two, 42, "p0"));
  // The line format itself is part of the contract (docs/tracing.md).
  std::istringstream lines(to_jsonl(one));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "{\"ts_ns\":1000,\"type\":\"txn_begin\",\"tid\":0,"
            "\"a\":3,\"b\":1,\"value\":0}");
}

TEST(TraceExport, JsonlRoundTripsEveryEvent) {
  Tracer tracer;
  {
    Armed armed_window(tracer);
    emit_at(10, EventType::kTxnBegin, 1, 1, 0.0);
    emit_at(20, EventType::kTxnAbort, 1, 3, -1.5);
    emit_at(30, EventType::kMonitorRound, 3, 9, 1e9);
    emit_at(40, EventType::kBusRead, 2, (5ull << 16) | 1, 2.0);
    emit_at(50, EventType::kBusPublish, 4, 77,
            std::numeric_limits<double>::quiet_NaN());  // renders as null
  }
  const auto original = events_of(tracer);
  std::istringstream lines(to_jsonl(tracer));
  std::string line;
  std::vector<Event> parsed;
  while (std::getline(lines, line)) {
    Event event;
    ASSERT_TRUE(parse_jsonl_line(line, &event)) << line;
    parsed.push_back(event);
  }
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].ts_ns, original[i].ts_ns);
    EXPECT_EQ(parsed[i].type, original[i].type);
    EXPECT_EQ(parsed[i].tid, original[i].tid);
    EXPECT_EQ(parsed[i].a, original[i].a);
    EXPECT_EQ(parsed[i].b, original[i].b);
    if (std::isnan(original[i].value)) {
      EXPECT_TRUE(std::isnan(parsed[i].value));
    } else {
      EXPECT_EQ(parsed[i].value, original[i].value);
    }
  }
}

TEST(TraceExport, ParserRejectsMalformedLines) {
  Event event;
  EXPECT_FALSE(parse_jsonl_line("", &event));
  EXPECT_FALSE(parse_jsonl_line("not json", &event));
  EXPECT_FALSE(parse_jsonl_line("{\"ts_ns\":1}", &event));
  EXPECT_FALSE(parse_jsonl_line(
      "{\"ts_ns\":1,\"type\":\"no_such_event\",\"tid\":0,\"a\":0,\"b\":0,"
      "\"value\":0}",
      &event));
  // Truncated mid-write (a killed child's last line):
  EXPECT_FALSE(parse_jsonl_line(
      "{\"ts_ns\":1,\"type\":\"txn_begin\",\"tid\":0,\"a\":0,\"b\"", &event));
}

TEST(TraceExport, ChromeTraceHasCounterTracksAndMetadata) {
  Tracer tracer;
  {
    Armed armed_window(tracer);
    emit_at(1'000'000, EventType::kPoolResize, 1, 4, 0.0);
    emit_at(2'000'000, EventType::kMonitorRound, 0, 1, 5000.0);
    emit_at(3'000'000, EventType::kMonitorRound, 2, 2, 0.0);  // overrun round
  }
  const std::string trace_json = to_chrome_trace(tracer, 1234, "rbset/rubic");
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"rbset/rubic\""), std::string::npos);
  // Level and throughput become counter tracks; the overrun round raises an
  // anomaly instant event on top of its counter sample.
  EXPECT_NE(trace_json.find("\"name\":\"level\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(trace_json.find("\"name\":\"throughput\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(trace_json.find("\"monitor_anomaly\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"pid\":1234"), std::string::npos);
}

TEST(TraceExport, MergeSkipsTruncatedFragmentTails) {
  const std::string whole =
      "{\"name\":\"a\",\"ph\":\"i\"}\n{\"name\":\"b\",\"ph\":\"i\"}\n";
  const std::string truncated = "{\"name\":\"c\",\"ph\":\"i\"}\n{\"name\":\"d";
  const std::string merged = merge_chrome_fragments({whole, truncated, ""});
  EXPECT_NE(merged.find("\"a\""), std::string::npos);
  EXPECT_NE(merged.find("\"b\""), std::string::npos);
  EXPECT_NE(merged.find("\"c\""), std::string::npos);
  EXPECT_EQ(merged.find("\"d\""), std::string::npos);
  // Exactly the three whole events survive.
  std::size_t events = 0;
  for (std::size_t pos = merged.find("\"ph\""); pos != std::string::npos;
       pos = merged.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 3u);
}

TEST(TraceRearm, NewGenerationRegistersFreshRings) {
  Tracer tracer;
  {
    Armed first(tracer);
    emit_at(1, EventType::kTxnBegin, 0, 0, 0.0);
  }
  {
    Armed second(tracer);
    emit_at(2, EventType::kTxnBegin, 0, 0, 0.0);
  }
  // Same thread, two armed windows: two rings, both drained.
  EXPECT_EQ(tracer.threads(), 2);
  EXPECT_EQ(tracer.total_written(), 2u);
}

// End-to-end: a real tuned run must leave monitor rounds, level decisions
// and STM commits in the trace — the Perfetto story the tentpole promises.
TEST(TraceIntegration, TunedProcessLeavesATimeline) {
  Tracer tracer;
  stm::Runtime rt;
  workloads::RbSetWorkload workload(rt, workloads::RbSetParams::tiny());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  config.monitor.stm_runtime = &rt;
  {
    Armed armed_window(tracer);
    runtime::TunedProcess process(rt, workload, controller, config);
    const runtime::RunReport report = process.run_for(400ms);
    EXPECT_GT(report.tasks_completed, 0u);
  }  // run_for stopped monitor and pool: writers are quiesced
  const auto events = events_of(tracer);
  EXPECT_GT(count_type(events, EventType::kMonitorRound), 0);
  EXPECT_GT(count_type(events, EventType::kLevelDecision), 0);
  EXPECT_GT(count_type(events, EventType::kPoolResize), 0);
  EXPECT_GT(count_type(events, EventType::kTxnCommit), 0);
  // The initial set_level(initial_level) plus RUBIC's climb from level 1 on
  // a live workload guarantee at least one resize; monitor rounds and level
  // decisions must be 1:1 on a run with no overruns forced.
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::trace

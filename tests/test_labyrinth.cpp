// Labyrinth tests: routing correctness on crafted mazes, conflict-driven
// re-routing under concurrency, and the grid/log consistency invariants.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/workloads/labyrinth/labyrinth_workload.hpp"

namespace rubic::workloads::labyrinth {
namespace {

using namespace std::chrono_literals;

LabyrinthParams tiny() {
  LabyrinthParams params;
  params.width = 16;
  params.height = 16;
  params.pair_count = 24;
  return params;
}

TEST(Labyrinth, SingleThreadRoutesAllPairsConsistently) {
  stm::Runtime rt;
  LabyrinthWorkload workload(rt, tiny());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 24; ++i) workload.run_task(ctx, rng);
  EXPECT_EQ(workload.pairs_claimed(), 24);
  EXPECT_EQ(workload.routed() + workload.failed(), 24);
  EXPECT_GT(workload.routed(), 0) << "an empty 16x16 grid must route some pairs";
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Labyrinth, ExtraProbesAfterExhaustionStayConsistent) {
  stm::Runtime rt;
  LabyrinthWorkload workload(rt, tiny());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) workload.run_task(ctx, rng);
  EXPECT_EQ(workload.pairs_claimed(), 100);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Labyrinth, ConcurrentRoutersNeverOverlapPaths) {
  stm::Runtime rt;
  LabyrinthParams params;
  params.width = 24;
  params.height = 24;
  params.pair_count = 64;
  LabyrinthWorkload workload(rt, params);
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(10 + t);
      barrier.arrive_and_wait();
      for (int i = 0; i < 64 / kThreads; ++i) workload.run_task(ctx, rng);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(workload.pairs_claimed(), 64);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error
      << " (overlapping paths mean the BFS read set failed to conflict)";
}

TEST(Labyrinth, UnderTunedProcess) {
  stm::Runtime rt;
  LabyrinthWorkload workload(rt, tiny());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(250ms);
  EXPECT_GT(report.tasks_completed, 24u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::workloads::labyrinth

// Tests for the contention-ratio controller (related-work baseline, §5):
// watermark state machine, and integration with the real runtime where the
// monitor derives the commit ratio from live STM statistics.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/control/contention.hpp"
#include "src/runtime/monitor.hpp"
#include "src/runtime/process.hpp"
#include "src/workloads/workload.hpp"

namespace rubic::control {
namespace {

using namespace std::chrono_literals;

TEST(ContentionRatio, WatermarkStateMachine) {
  ContentionRatioController c(LevelBounds{1, 16}, 0.7, 0.9);
  EXPECT_EQ(c.initial_level(), 1);
  EXPECT_EQ(c.on_commit_ratio(0.95), 2) << "low contention grows";
  EXPECT_EQ(c.on_commit_ratio(0.95), 3);
  EXPECT_EQ(c.on_commit_ratio(0.80), 3) << "between watermarks holds";
  EXPECT_EQ(c.on_commit_ratio(0.50), 2) << "high contention sheds";
  EXPECT_EQ(c.on_commit_ratio(0.00), 1);
  EXPECT_EQ(c.on_commit_ratio(0.00), 1) << "clamped at the floor";
  c.reset();
  EXPECT_EQ(c.level(), 1);
}

TEST(ContentionRatio, ThroughputFallbackHoldsLevel) {
  ContentionRatioController c(LevelBounds{1, 16});
  c.on_commit_ratio(0.99);
  c.on_commit_ratio(0.99);
  const int level = c.level();
  EXPECT_EQ(c.on_sample(12345.0), level)
      << "without a contention signal the policy has no opinion";
}

TEST(ContentionRatio, RejectsBadWatermarks) {
  EXPECT_DEATH(ContentionRatioController(LevelBounds{1, 4}, 0.9, 0.7), "");
}

// A workload whose abort rate is directly controlled: every task touches
// the same two words in opposite orders half the time, so adding threads
// floods the commit ratio.
class ConflictStormWorkload final : public workloads::Workload {
 public:
  std::string_view name() const override { return "conflict-storm"; }
  void run_task(stm::TxnDesc& ctx, util::Xoshiro256& rng) override {
    const bool forward = rng.below(2) == 0;
    stm::atomically(ctx, [&](stm::Txn& tx) {
      if (forward) {
        a_.write(tx, a_.read(tx) + 1);
        b_.write(tx, b_.read(tx) + 1);
      } else {
        b_.write(tx, b_.read(tx) + 1);
        a_.write(tx, a_.read(tx) + 1);
      }
    });
  }
  bool verify(std::string* error) override {
    if (a_.unsafe_read() != b_.unsafe_read()) {
      if (error != nullptr) *error = "a and b diverged";
      return false;
    }
    return true;
  }

 private:
  stm::TVar<std::int64_t> a_{0};
  stm::TVar<std::int64_t> b_{0};
};

TEST(ContentionRatio, MonitorFeedsLiveCommitRatio) {
  stm::Runtime rt;
  ConflictStormWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 4, .initial_level = 1});
  ContentionRatioController controller(LevelBounds{1, 4}, 0.10, 0.99);
  runtime::MonitorConfig mcfg;
  mcfg.period = 5ms;
  mcfg.stm_runtime = &rt;
  runtime::Monitor monitor(pool, controller, mcfg);
  std::this_thread::sleep_for(200ms);
  monitor.stop();
  pool.stop();
  EXPECT_GE(monitor.rounds(), 10u);
  // The controller actually received ratio signals: its level moved off the
  // initial value at some point (1-core runs are mostly commit-clean, so
  // with a 0.99 high watermark it ratchets up; any movement proves wiring).
  EXPECT_GT(pool.level(), 1);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(ContentionRatio, EndToEndTunedProcess) {
  stm::Runtime rt;
  ConflictStormWorkload workload;
  ContentionRatioController controller(LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  config.monitor.stm_runtime = &rt;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(200ms);
  EXPECT_GT(report.tasks_completed, 100u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::control

// Telemetry layer tests: registry semantics, striped counters/histograms,
// exporter determinism and round-trips, cross-process merging, the
// background scraper, the STM instrumentation integration, and the audit →
// serialize → parse → replay loop for every control::known_policies()
// policy (the regression oracle tools/rubic_replay automates).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/control/factory.hpp"
#include "src/control/fixed.hpp"
#include "src/control/guard.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/telemetry/audit.hpp"
#include "src/telemetry/telemetry.hpp"
#include "src/util/rng.hpp"
#include "src/workloads/rbset_workload.hpp"

namespace rubic {
namespace {

using namespace std::chrono_literals;

// --- histogram bucketing ----------------------------------------------------

TEST(Bucketing, PowerOfTwoEdges) {
  EXPECT_EQ(telemetry::bucket_index(0), 0u);
  EXPECT_EQ(telemetry::bucket_index(1), 1u);
  EXPECT_EQ(telemetry::bucket_index(2), 2u);
  EXPECT_EQ(telemetry::bucket_index(3), 2u);
  EXPECT_EQ(telemetry::bucket_index(4), 3u);
  EXPECT_EQ(telemetry::bucket_index(7), 3u);
  EXPECT_EQ(telemetry::bucket_index(8), 4u);
  EXPECT_EQ(telemetry::bucket_index(std::uint64_t{1} << 61), 62u);
  EXPECT_EQ(telemetry::bucket_index(std::uint64_t{1} << 62), 63u);
  EXPECT_EQ(telemetry::bucket_index(~std::uint64_t{0}), 63u);
}

TEST(Bucketing, UpperBoundsMatchIndex) {
  EXPECT_EQ(telemetry::bucket_upper_bound(0), 0u);
  EXPECT_EQ(telemetry::bucket_upper_bound(1), 1u);
  EXPECT_EQ(telemetry::bucket_upper_bound(2), 3u);
  EXPECT_EQ(telemetry::bucket_upper_bound(3), 7u);
  EXPECT_EQ(telemetry::bucket_upper_bound(63), ~std::uint64_t{0});
  // Every representable value falls inside its own bucket's bound.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 1000ull, ~0ull}) {
    EXPECT_LE(v, telemetry::bucket_upper_bound(telemetry::bucket_index(v)));
  }
}

// --- metric primitives ------------------------------------------------------

TEST(Quantile, EmptyHistogramYieldsZero) {
  const std::vector<std::uint64_t> empty;
  EXPECT_DOUBLE_EQ(telemetry::quantile_from_buckets(empty, 0.5), 0.0);
  telemetry::Histogram histogram;
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
}

TEST(Quantile, SingleBucketStaysWithinItsBounds) {
  telemetry::Histogram histogram;
  for (int i = 0; i < 1000; ++i) histogram.observe(100);
  // All mass sits in bucket [64, 127]: every quantile must land there —
  // the factor-of-2 error bound the traffic SLO report quotes.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
    const double value = histogram.quantile(q);
    EXPECT_GE(value, 64.0) << q;
    EXPECT_LE(value, 128.0) << q;
  }
  // Value 0 is its own bucket and interpolates to exactly 0.
  telemetry::Histogram zeros;
  zeros.observe(0);
  zeros.observe(0);
  EXPECT_DOUBLE_EQ(zeros.quantile(0.5), 0.0);
}

TEST(Quantile, KnownUniformDistributionLandsInTheRightBuckets) {
  telemetry::Histogram histogram;
  for (std::uint64_t value = 1; value <= 1000; ++value) {
    histogram.observe(value);
  }
  // True p50 = 500 lives in bucket [256, 511]; true p99 = 990 in
  // [512, 1023]. Interpolation may not leave the containing bucket.
  const double p50 = histogram.quantile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  const double p99 = histogram.quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  const double p999 = histogram.quantile(0.999);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 1024.0);
}

TEST(Quantile, MonotonicInQAndClamped) {
  telemetry::Histogram histogram;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) histogram.observe(rng.below(100000));
  double last = -1.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double value = histogram.quantile(q);
    EXPECT_GE(value, last) << q;
    last = value;
  }
  const std::vector<std::uint64_t> buckets = histogram.buckets();
  EXPECT_DOUBLE_EQ(telemetry::quantile_from_buckets(buckets, -0.5),
                   telemetry::quantile_from_buckets(buckets, 0.0));
  EXPECT_DOUBLE_EQ(telemetry::quantile_from_buckets(buckets, 2.0),
                   telemetry::quantile_from_buckets(buckets, 1.0));
  // The member wrapper is the same estimator over the same snapshot.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.9),
                   telemetry::quantile_from_buckets(buckets, 0.9));
}

TEST(Quantile, OverflowBucketStaysFiniteAndOrdered) {
  // The top bucket (index 63) absorbs the whole tail [2^62, 2^64): samples
  // up there must yield finite, in-bucket quantiles — no overflow, no inf.
  telemetry::Histogram histogram;
  histogram.observe(std::uint64_t{1} << 62);
  histogram.observe(std::uint64_t{1} << 63);
  histogram.observe(~std::uint64_t{0});
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double value = histogram.quantile(q);
    EXPECT_TRUE(std::isfinite(value)) << q;
    EXPECT_GE(value, static_cast<double>(std::uint64_t{1} << 62)) << q;
    EXPECT_LE(value, 18446744073709551616.0 /* 2^64 */) << q;
  }
  // Mixed: mass below plus a tail in the overflow bucket — low quantiles
  // stay low, the extreme ones climb into the top bucket.
  telemetry::Histogram mixed;
  for (int i = 0; i < 990; ++i) mixed.observe(100);
  for (int i = 0; i < 10; ++i) mixed.observe(~std::uint64_t{0});
  EXPECT_LE(mixed.quantile(0.5), 256.0);
  EXPECT_GE(mixed.quantile(0.999),
            static_cast<double>(std::uint64_t{1} << 62));
}

TEST(Quantile, HoldsAfterSnapshotMerge) {
  // The SLO numbers a parent quotes come from histograms merged across
  // child snapshots (merge_snapshots sums buckets): the estimator over the
  // merged buckets must agree exactly with a histogram that observed the
  // union of the samples directly.
  telemetry::Registry child_a, child_b;
  telemetry::Histogram& ha = child_a.histogram("merge_q_latency_us");
  telemetry::Histogram& hb = child_b.histogram("merge_q_latency_us");
  telemetry::Histogram combined;
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t value = rng.below(50000);
    (i % 2 == 0 ? ha : hb).observe(value);
    combined.observe(value);
  }
  const std::vector<telemetry::Snapshot> parts = {child_a.snapshot(),
                                                  child_b.snapshot()};
  const telemetry::Snapshot merged = telemetry::merge_snapshots(parts);
  const telemetry::MetricSnapshot* metric = nullptr;
  for (const auto& m : merged.metrics) {
    if (m.name == "merge_q_latency_us") metric = &m;
  }
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->count, 4000u);
  EXPECT_EQ(metric->count, combined.count());
  EXPECT_EQ(metric->sum, combined.sum());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(telemetry::quantile_from_buckets(metric->buckets, q),
                     combined.quantile(q))
        << q;
  }
}

TEST(Metrics, CounterSumsAcrossThreads) {
  telemetry::Registry reg;
  telemetry::Counter& counter = reg.counter("c_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  counter.add(58);
  EXPECT_EQ(counter.value(), 4058u);
}

TEST(Metrics, HistogramCountSumBuckets) {
  telemetry::Registry reg;
  telemetry::Histogram& hist = reg.histogram("h");
  hist.observe(0);
  hist.observe(1);
  hist.observe(5);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.sum(), 6u);
  const std::vector<std::uint64_t> buckets = hist.buckets();
  // Trimmed after the last non-empty bucket: {0:1, 1:1, 2:0, 3:1}.
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Registry, StableIdentityAndTypeClash) {
  telemetry::Registry reg;
  telemetry::Counter& a = reg.counter("x_total", {{"k", "v"}});
  telemetry::Counter& b = reg.counter("x_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  telemetry::Counter& other = reg.counter("x_total", {{"k", "w"}});
  EXPECT_NE(&a, &other);
  EXPECT_THROW(reg.gauge("x_total", {{"k", "v"}}), std::logic_error);
  EXPECT_EQ(reg.metric_count(), 2u);
}

TEST(Registry, SnapshotSortedAndCollectorRuns) {
  telemetry::Registry reg;
  reg.counter("zz_total").add(1);
  reg.counter("aa_total").add(2);
  int collected = 0;
  reg.add_collector([&reg, &collected] {
    reg.gauge("mm_gauge").set(static_cast<double>(++collected));
  });
  const telemetry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aa_total");
  EXPECT_EQ(snap.metrics[1].name, "mm_gauge");
  EXPECT_EQ(snap.metrics[2].name, "zz_total");
  EXPECT_EQ(collected, 1);
  EXPECT_GT(snap.ts_ns, 0u);
}

// --- exporters --------------------------------------------------------------

telemetry::Registry& exporter_fixture() {
  static telemetry::Registry* reg = [] {
    auto* r = new telemetry::Registry();
    r->counter("req_total", {{"cause", "a\"b\\c"}}).add(3);
    r->gauge("level").set(2.5);
    telemetry::Histogram& h = r->histogram("lat_ns");
    h.observe(0);
    h.observe(1);
    h.observe(5);
    return r;
  }();
  return *reg;
}

TEST(Prometheus, ExpositionFormat) {
  const std::string text =
      telemetry::to_prometheus(exporter_fixture().snapshot());
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  // Label values escape backslash and quote.
  EXPECT_NE(text.find("req_total{cause=\"a\\\"b\\\\c\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("level 2.5\n"), std::string::npos);
  // Cumulative buckets: le=0 -> 1, le=1 -> 2, le=7 -> 3, +Inf = count.
  EXPECT_NE(text.find("lat_ns_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 3\n"), std::string::npos);
}

TEST(Prometheus, DeterministicBytes) {
  telemetry::Snapshot snap = exporter_fixture().snapshot();
  snap.ts_ns = 0;  // pin the only time-dependent field
  EXPECT_EQ(telemetry::to_prometheus(snap), telemetry::to_prometheus(snap));
}

TEST(Json, RoundTripBothStyles) {
  const telemetry::Snapshot snap = exporter_fixture().snapshot();
  for (const auto style :
       {telemetry::JsonStyle::kPretty, telemetry::JsonStyle::kCompact}) {
    const std::string text = telemetry::to_json(snap, style);
    telemetry::Snapshot parsed;
    std::string error;
    ASSERT_TRUE(telemetry::parse_json_snapshot(text, &parsed, &error))
        << error;
    EXPECT_EQ(parsed.ts_ns, snap.ts_ns);
    ASSERT_EQ(parsed.metrics.size(), snap.metrics.size());
    for (std::size_t i = 0; i < parsed.metrics.size(); ++i) {
      EXPECT_EQ(parsed.metrics[i], snap.metrics[i]) << i;
    }
  }
}

TEST(Json, RejectsMalformedAndWrongSchema) {
  telemetry::Snapshot out;
  std::string error;
  EXPECT_FALSE(telemetry::parse_json_snapshot("", &out, &error));
  EXPECT_FALSE(telemetry::parse_json_snapshot("{", &out, &error));
  EXPECT_FALSE(telemetry::parse_json_snapshot(
      "{\"schema\":\"rubic-telemetry/v0\",\"ts_ns\":0,\"metrics\":[]}", &out,
      &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(telemetry::parse_json_snapshot(
      "{\"schema\":\"rubic-telemetry/v1\",\"ts_ns\":0,\"metrics\":[{}]}",
      &out, &error));
}

TEST(Merge, SumsByIdentityAndKeepsMaxTimestamp) {
  telemetry::Registry a;
  a.counter("c_total").add(2);
  a.gauge("g").set(1.0);
  a.histogram("h").observe(1);
  telemetry::Registry b;
  b.counter("c_total").add(3);
  b.gauge("g").set(4.0);
  b.histogram("h").observe(5);
  b.counter("only_b_total", {{"p", "2"}}).add(7);
  std::vector<telemetry::Snapshot> snaps{a.snapshot(), b.snapshot()};
  const telemetry::Snapshot merged = telemetry::merge_snapshots(snaps);
  ASSERT_EQ(merged.metrics.size(), 4u);
  EXPECT_EQ(merged.ts_ns, std::max(snaps[0].ts_ns, snaps[1].ts_ns));
  EXPECT_EQ(merged.metrics[0].name, "c_total");
  EXPECT_EQ(merged.metrics[0].value_u64, 5u);
  EXPECT_EQ(merged.metrics[1].name, "g");
  EXPECT_DOUBLE_EQ(merged.metrics[1].value, 5.0);
  EXPECT_EQ(merged.metrics[2].name, "h");
  EXPECT_EQ(merged.metrics[2].count, 2u);
  EXPECT_EQ(merged.metrics[2].sum, 6u);
  // Buckets merge element-wise to the longer vector: {0,1,0,1}.
  ASSERT_EQ(merged.metrics[2].buckets.size(), 4u);
  EXPECT_EQ(merged.metrics[2].buckets[1], 1u);
  EXPECT_EQ(merged.metrics[2].buckets[3], 1u);
  EXPECT_EQ(merged.metrics[3].name, "only_b_total");
  EXPECT_EQ(merged.metrics[3].value_u64, 7u);
}

TEST(Scraper, AppendsParseableSnapshots) {
  const std::string path = "test_telemetry_scraper.jsonl";
  std::remove(path.c_str());
  telemetry::Registry reg;
  reg.counter("scraped_total").add(9);
  {
    telemetry::ScraperConfig config;
    config.path = path;
    config.period = 20ms;
    telemetry::Scraper scraper(reg, config);
    std::this_thread::sleep_for(70ms);
    scraper.stop();
    EXPECT_GE(scraper.scrapes(), 1u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_FALSE(contents.empty());
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t end = contents.find('\n', start);
    if (end == std::string::npos) end = contents.size();
    const std::string_view line(contents.data() + start, end - start);
    if (!line.empty()) {
      telemetry::Snapshot snap;
      std::string error;
      ASSERT_TRUE(telemetry::parse_json_snapshot(line, &snap, &error))
          << error;
      ASSERT_EQ(snap.metrics.size(), 1u);
      EXPECT_EQ(snap.metrics[0].value_u64, 9u);
      ++lines;
    }
    start = end + 1;
  }
  EXPECT_GE(lines, 1u);
}

// --- STM instrumentation integration ----------------------------------------

std::uint64_t counter_value(const telemetry::Snapshot& snap,
                            std::string_view name) {
  std::uint64_t sum = 0;
  for (const auto& metric : snap.metrics) {
    if (metric.name == name) sum += metric.value_u64;
  }
  return sum;
}

std::uint64_t histogram_count(const telemetry::Snapshot& snap,
                              std::string_view name) {
  // Sum across label sets: STM metrics carry a per-backend label, so one
  // name can appear once per backend exercised by the process.
  std::uint64_t sum = 0;
  for (const auto& metric : snap.metrics) {
    if (metric.name == name) sum += metric.count;
  }
  return sum;
}

TEST(StmIntegration, ArmedRunPopulatesProcessRegistry) {
  telemetry::Registry& reg = telemetry::registry();
  const telemetry::Snapshot before = reg.snapshot();
  {
    telemetry::Armed armed;
    stm::Runtime rt;
    stm::TxnDesc& ctx = rt.register_thread();
    stm::TVar<std::int64_t> x(0);
    for (int i = 0; i < 100; ++i) {
      stm::atomically(ctx,
                      [&](stm::Txn& tx) { x.write(tx, x.read(tx) + 1); });
    }
  }
  const telemetry::Snapshot after = reg.snapshot();
  EXPECT_GE(counter_value(after, "rubic_stm_commits_total") -
                counter_value(before, "rubic_stm_commits_total"),
            100u);
  EXPECT_GE(histogram_count(after, "rubic_stm_commit_latency_ns") -
                histogram_count(before, "rubic_stm_commit_latency_ns"),
            100u);
  EXPECT_GE(histogram_count(after, "rubic_stm_write_set_size") -
                histogram_count(before, "rubic_stm_write_set_size"),
            100u);
}

TEST(StmIntegration, DisarmedRunAddsNothing) {
  telemetry::Registry& reg = telemetry::registry();
  const telemetry::Snapshot before = reg.snapshot();
  {
    stm::Runtime rt;
    stm::TxnDesc& ctx = rt.register_thread();
    stm::TVar<std::int64_t> x(0);
    for (int i = 0; i < 50; ++i) {
      stm::atomically(ctx, [&](stm::Txn& tx) { x.write(tx, i); });
    }
  }
  const telemetry::Snapshot after = reg.snapshot();
  EXPECT_EQ(counter_value(after, "rubic_stm_commits_total"),
            counter_value(before, "rubic_stm_commits_total"));
}

// --- audit + replay ---------------------------------------------------------

// Records a synthetic decision sequence exactly the way the monitor does:
// build the policy from the meta, wrap it in the guard with the meta's
// bounds, feed seeded inputs (including overrun and sanitized rounds), log
// what came back. replay_audit() must reproduce every decision.
std::vector<telemetry::AuditRecord> record_synthetic(
    const telemetry::AuditMeta& meta, int rounds) {
  control::PolicyConfig config;
  config.contexts = meta.contexts;
  config.pool_size = meta.pool;
  config.aimd_alpha = meta.aimd_alpha;
  if (meta.policy == "equalshare") {
    config.allocator =
        std::make_shared<control::CentralAllocator>(meta.contexts);
    for (int i = 0; i < meta.processes; ++i) {
      config.allocator->register_process();
    }
  }
  control::ControllerGuard guard(
      control::make_controller(meta.policy, config),
      control::LevelBounds{meta.min_level, meta.max_level});

  std::uint64_t state = meta.seed | 1;
  const auto next_raw = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 33) % 100000);
  };

  std::vector<telemetry::AuditRecord> records;
  int level = guard.initial_level();
  for (int i = 0; i < rounds; ++i) {
    telemetry::AuditRecord record;
    record.round = static_cast<std::uint64_t>(i);
    record.prev = level;
    record.overrun = i % 9 == 5;
    record.sanitized = i % 7 == 3;
    record.used_commit_ratio = guard.consumes_contention();
    double input =
        record.used_commit_ratio ? next_raw() / 100000.0 : next_raw();
    if (record.sanitized) input = 0.0;
    record.input = input;
    if (record.overrun) {
      record.next = level;
    } else {
      const int next = record.used_commit_ratio
                           ? guard.on_commit_ratio(input)
                           : guard.on_sample(input);
      const control::DecisionInfo info = guard.decision_info();
      if (info.valid) {
        record.phase_valid = true;
        record.phase = info.phase;
        record.phase_name = std::string(info.phase_name);
        record.aux = info.aux;
      }
      record.next = next;
      level = next;
    }
    records.push_back(std::move(record));
  }
  return records;
}

TEST(AuditReplay, EveryKnownPolicyRoundTrips) {
  for (const auto& policy : control::known_policies()) {
    telemetry::AuditMeta meta;
    meta.policy = std::string(policy);
    meta.min_level = 1;
    meta.max_level = 8;
    meta.contexts = 8;
    meta.pool = 8;
    meta.processes = 2;
    meta.seed = 42;
    const std::vector<telemetry::AuditRecord> records =
        record_synthetic(meta, 64);

    const std::string text = telemetry::to_jsonl(meta, records);
    telemetry::AuditMeta parsed_meta;
    std::vector<telemetry::AuditRecord> parsed;
    std::string error;
    ASSERT_TRUE(telemetry::parse_audit(text, &parsed_meta, &parsed, &error))
        << meta.policy << ": " << error;
    EXPECT_EQ(parsed_meta, meta) << meta.policy;
    ASSERT_EQ(parsed.size(), records.size()) << meta.policy;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      ASSERT_EQ(parsed[i], records[i]) << meta.policy << " record " << i;
    }
    // Serialization is deterministic: identical logs → identical bytes.
    EXPECT_EQ(telemetry::to_jsonl(parsed_meta, parsed), text) << meta.policy;

    const telemetry::ReplayResult result =
        telemetry::replay_audit(parsed_meta, parsed);
    EXPECT_TRUE(result.ok) << meta.policy << "\n"
                           << telemetry::explain_replay(parsed_meta, result);
    EXPECT_EQ(result.rounds, records.size()) << meta.policy;
    EXPECT_EQ(result.mismatches, 0u) << meta.policy;
  }
}

TEST(AuditReplay, DetectsTamperedDecision) {
  telemetry::AuditMeta meta;
  meta.policy = "rubic";
  meta.min_level = 1;
  meta.max_level = 8;
  meta.contexts = 8;
  meta.pool = 8;
  meta.seed = 7;
  std::vector<telemetry::AuditRecord> records = record_synthetic(meta, 32);
  // Forge one decision: pick a non-overrun round and nudge its answer.
  for (auto& record : records) {
    if (!record.overrun && record.round >= 10) {
      record.next = record.next == meta.max_level ? record.next - 1
                                                  : record.next + 1;
      break;
    }
  }
  const telemetry::ReplayResult result =
      telemetry::replay_audit(meta, records);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.mismatches, 1u);
  const std::string explained = telemetry::explain_replay(meta, result);
  EXPECT_NE(explained.find("MISMATCH"), std::string::npos);
  EXPECT_NE(explained.find("REPLAY FAILED"), std::string::npos);
}

TEST(AuditReplay, UnknownPolicyReportsErrorNotCrash) {
  telemetry::AuditMeta meta;
  meta.policy = "no_such_policy";
  const telemetry::ReplayResult result = telemetry::replay_audit(meta, {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  const std::string explained = telemetry::explain_replay(meta, result);
  EXPECT_NE(explained.find("replay failed"), std::string::npos);
}

TEST(AuditReplay, ParseRejectsMissingHeaderAndBadSchema) {
  telemetry::AuditMeta meta;
  std::vector<telemetry::AuditRecord> records;
  std::string error;
  EXPECT_FALSE(telemetry::parse_audit("", &meta, &records, &error));
  EXPECT_FALSE(telemetry::parse_audit(
      "{\"schema\":\"rubic-audit/v0\",\"policy\":\"rubic\"}\n", &meta,
      &records, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

// The end-to-end oracle: a real monitored run records an audit log through
// MonitorConfig::audit, and the offline replay reproduces every decision.
TEST(AuditReplay, MonitorRecordingReplaysExactly) {
  stm::Runtime rt;
  workloads::RbSetWorkload workload(rt, workloads::RbSetParams::tiny());
  control::PolicyConfig policy_config;
  policy_config.contexts = 4;
  policy_config.pool_size = 4;
  std::unique_ptr<control::Controller> controller =
      control::make_controller("rubic", policy_config);

  telemetry::AuditMeta meta;
  meta.policy = "rubic";
  meta.min_level = 1;
  meta.max_level = 4;
  meta.contexts = 4;
  meta.pool = 4;
  meta.processes = 1;
  telemetry::AuditLog log(meta);

  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 10ms;
  config.monitor.stm_runtime = &rt;
  config.monitor.audit = &log;
  runtime::TunedProcess process(rt, workload, *controller, config);
  process.run_for(500ms);

  ASSERT_GT(log.size(), 0u);
  const std::string text = telemetry::to_jsonl(log);
  telemetry::AuditMeta parsed_meta;
  std::vector<telemetry::AuditRecord> parsed;
  std::string error;
  ASSERT_TRUE(telemetry::parse_audit(text, &parsed_meta, &parsed, &error))
      << error;
  const telemetry::ReplayResult result =
      telemetry::replay_audit(parsed_meta, parsed);
  EXPECT_TRUE(result.ok) << telemetry::explain_replay(parsed_meta, result);
  EXPECT_EQ(result.mismatches, 0u);
}

}  // namespace
}  // namespace rubic

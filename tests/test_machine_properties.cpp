// Parameterized property tests of the machine model across every workload
// profile: the structural guarantees the controllers' correctness arguments
// rest on (DESIGN.md §3), checked exhaustively rather than at spot values.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "src/sim/machine_model.hpp"
#include "src/sim/workload_profiles.hpp"

namespace rubic::sim {
namespace {

class MachineProperty : public ::testing::TestWithParam<const char*> {
 protected:
  MachineModel machine_{64};
  WorkloadProfile profile_ = profile_by_name(GetParam());
};

TEST_P(MachineProperty, ThroughputPositiveAndFinite) {
  for (int level = 1; level <= 128; ++level) {
    for (int extra = 0; extra <= 128; extra += 16) {
      const double throughput =
          machine_.throughput(profile_, level, level + extra);
      EXPECT_GT(throughput, 0.0) << level << "+" << extra;
      EXPECT_TRUE(std::isfinite(throughput)) << level << "+" << extra;
    }
  }
}

TEST_P(MachineProperty, ForeignLoadNeverHelps) {
  // For a fixed own level, more co-runner threads can only hurt (or leave
  // unchanged, below the line): monotone non-increasing in total_threads.
  for (int level : {1, 4, 16, 48, 64}) {
    double previous = machine_.throughput(profile_, level, level);
    for (int total = level + 1; total <= level + 128; ++total) {
      const double current = machine_.throughput(profile_, level, total);
      EXPECT_LE(current, previous + 1e-9)
          << GetParam() << " level=" << level << " total=" << total;
      previous = current;
    }
  }
}

TEST_P(MachineProperty, CrossingTheLineIsDetectableButGentle) {
  // The core controller-facing property: throughput strictly drops when the
  // system crosses the oversubscription line, but a ±1-thread change near
  // the line moves it by less than ~5% (the plateau that noise masks).
  const double at_line = machine_.throughput(profile_, 32, 64);
  const double just_over = machine_.throughput(profile_, 32, 66);
  EXPECT_LT(just_over, at_line);
  EXPECT_GT(just_over, 0.90 * at_line);
}

TEST_P(MachineProperty, DedicatedMachineMatchesCurveEverywhere) {
  for (int level = 1; level <= 64; ++level) {
    EXPECT_DOUBLE_EQ(
        machine_.throughput(profile_, level, level),
        profile_.sequential_rate * profile_.curve->speedup(level));
  }
}

TEST_P(MachineProperty, SpeedupNormalizationConsistent) {
  for (int level : {1, 7, 32, 64}) {
    EXPECT_NEAR(machine_.speedup(profile_, level, level),
                profile_.curve->speedup(level), 1e-12);
  }
}

TEST_P(MachineProperty, HalfShareBeatsDoubleLoad) {
  // Cooperation dominates racing for every profile: two processes at C/2
  // each beat two at C each (per-process throughput).
  const double fair = machine_.throughput(profile_, 32, 64);
  const double race = machine_.throughput(profile_, 64, 128);
  EXPECT_GT(fair, race) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, MachineProperty,
                         ::testing::Values("intruder", "vacation", "rbt",
                                           "rbt-readonly"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rubic::sim

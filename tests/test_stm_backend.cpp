// Backend-layer tests: name/parse round-trips, NOrec protocol semantics
// (sequence-lock accounting, value-based validation, ABA tolerance,
// write-back deferral), cross-backend coexistence in one process, and a
// full workload-registry smoke run on NOrec.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/stm/backend/twopl_undo.hpp"
#include "src/stm/stm.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/workloads/registry.hpp"

namespace rubic::stm {
namespace {

RuntimeConfig with_backend(BackendKind backend) {
  RuntimeConfig cfg;
  cfg.backend = backend;
  return cfg;
}

TEST(BackendRegistry, NamesAndParseRoundTrip) {
  const auto all = known_backends();
  ASSERT_EQ(all.size(), 4u);
  for (const BackendKind k : all) {
    const auto parsed = parse_backend(backend_name(k));
    ASSERT_TRUE(parsed.has_value()) << backend_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(backend_name(BackendKind::kOrecSwiss), "orec_swiss");
  EXPECT_EQ(backend_name(BackendKind::kNorec), "norec");
  EXPECT_EQ(backend_name(BackendKind::kTl2), "tl2");
  EXPECT_EQ(backend_name(BackendKind::k2plUndo), "2plundo");
}

TEST(BackendRegistry, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("TL2").has_value());
  EXPECT_FALSE(parse_backend("2pl").has_value());
  EXPECT_FALSE(parse_backend("OREC_SWISS").has_value());
  EXPECT_FALSE(parse_backend("norec ").has_value());
}

TEST(BackendRegistry, TxnDescReportsItsRuntimeBackend) {
  for (const BackendKind k : known_backends()) {
    Runtime rt(with_backend(k));
    EXPECT_EQ(rt.backend(), k);
    EXPECT_EQ(rt.register_thread().backend(), k);
  }
}

TEST(NorecProtocol, WriteBackIsDeferredUntilCommit) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(1);
  atomically(ctx, [&](Txn& tx) {
    x.write(tx, 2);
    EXPECT_EQ(x.unsafe_read(), 1) << "NOrec must buffer until commit";
    EXPECT_EQ(x.read(tx), 2) << "read-own-writes must see the buffer";
  });
  EXPECT_EQ(x.unsafe_read(), 2);
}

TEST(NorecProtocol, SequenceAdvancesByTwoPerWritingCommit) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  EXPECT_EQ(rt.norec_seq().load(), 0u);
  for (int i = 1; i <= 5; ++i) {
    atomically(ctx, [&](Txn& tx) { x.write(tx, i); });
    EXPECT_EQ(rt.norec_seq().load(), 2u * static_cast<unsigned>(i));
  }
  // Read-only commits never touch the sequence lock or the version clock.
  atomically(ctx, [&](Txn& tx) { (void)x.read(tx); });
  EXPECT_EQ(rt.norec_seq().load(), 10u);
  EXPECT_EQ(rt.clock().load(), 0u);
  EXPECT_EQ(rt.aggregate_stats().read_only_commits, 1u);
}

TEST(NorecProtocol, ValueValidationToleratesSameValueRepublish) {
  // ABA at the value level is not a conflict under NOrec: a foreign commit
  // that leaves every value this transaction read unchanged extends the
  // snapshot instead of aborting it.
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(5), y(9);
  int attempts = 0;
  const std::int64_t got = atomically(reader, [&](Txn& tx) {
    ++attempts;
    const auto vx = x.read(tx);
    if (attempts == 1) {
      // Foreign commit republishing the same value: bumps the sequence,
      // changes nothing the reader saw.
      atomically(writer, [&](Txn& wtx) { x.write(wtx, 5); });
    }
    return vx + y.read(tx);  // y's read forces revalidation
  });
  EXPECT_EQ(got, 14);
  EXPECT_EQ(attempts, 1) << "same-value republish must not abort the reader";
  const auto stats = rt.aggregate_stats();
  EXPECT_GE(stats.extensions, 1u) << "revalidation must extend the snapshot";
  EXPECT_EQ(stats.total_aborts(), 0u);
}

TEST(NorecProtocol, ValueValidationAbortsOnChangedValue) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(5), y(9);
  int attempts = 0;
  const std::int64_t got = atomically(reader, [&](Txn& tx) {
    ++attempts;
    const auto vx = x.read(tx);
    if (attempts == 1) {
      atomically(writer, [&](Txn& wtx) { x.write(wtx, 6); });
    }
    return vx + y.read(tx);
  });
  EXPECT_EQ(got, 15) << "the retry must observe the committed value";
  EXPECT_EQ(attempts, 2);
  const auto stats = rt.aggregate_stats();
  EXPECT_EQ(
      stats.aborts[static_cast<std::size_t>(AbortCause::kValidationFailed)],
      1u);
}

TEST(NorecProtocol, WriterCommitRevalidatesAgainstInterveningCommit) {
  // A writer whose read set was invalidated between its last read and its
  // commit-time CAS must abort rather than publish a stale update.
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& rmw = rt.register_thread();
  TxnDesc& other = rt.register_thread();
  TVar<std::int64_t> x(0);
  int attempts = 0;
  atomically(rmw, [&](Txn& tx) {
    ++attempts;
    const auto v = x.read(tx);
    if (attempts == 1) {
      atomically(other, [&](Txn& otx) { x.write(otx, x.read(otx) + 1); });
    }
    x.write(tx, v + 1);
  });
  EXPECT_EQ(attempts, 2) << "lost update must be caught at commit";
  EXPECT_EQ(x.unsafe_read(), 2);
}

TEST(NorecProtocol, IgnoresOrecOnlyConfigKnobs) {
  // cm / lock_timing have no meaning under NOrec; any combination must
  // behave identically (and correctly).
  for (const CmPolicy cm : {CmPolicy::kTimidBackoff, CmPolicy::kGreedyTimestamp}) {
    for (const LockTiming t : {LockTiming::kEncounterTime, LockTiming::kCommitTime}) {
      RuntimeConfig cfg = with_backend(BackendKind::kNorec);
      cfg.cm = cm;
      cfg.lock_timing = t;
      Runtime rt(cfg);
      TxnDesc& ctx = rt.register_thread();
      TVar<std::int64_t> x(0);
      for (int i = 0; i < 50; ++i) {
        atomically(ctx, [&](Txn& tx) { x.write(tx, x.read(tx) + 1); });
      }
      EXPECT_EQ(x.unsafe_read(), 50);
      EXPECT_EQ(rt.norec_seq().load(), 100u);
    }
  }
}

TEST(NorecProtocol, RetryBudgetAndUserRetryBehaveAsOnOrec) {
  RuntimeConfig cfg = with_backend(BackendKind::kNorec);
  cfg.max_retries = 3;
  Runtime rt(cfg);
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  int attempts = 0;
  EXPECT_THROW(atomically(ctx,
                          [&](Txn& tx) {
                            ++attempts;
                            x.write(tx, 7);
                            tx.retry();
                          }),
               RetriesExhausted);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(x.unsafe_read(), 0) << "no aborted attempt may have written back";
  EXPECT_EQ(rt.norec_seq().load(), 0u)
      << "aborted writers must leave the sequence lock untouched";
  EXPECT_FALSE(ctx.active());
  // The context stays usable.
  atomically(ctx, [&](Txn& tx) { x.write(tx, 1); });
  EXPECT_EQ(x.unsafe_read(), 1);
}

TEST(NorecProtocol, EpochReclamationWorks) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  auto* victim = new std::uint64_t(0);
  atomically(ctx, [&](Txn& tx) { tx.free(victim); });
  EXPECT_EQ(rt.limbo_size(), 1u);
  rt.try_advance_epoch(ctx);
  rt.try_advance_epoch(ctx);
  EXPECT_EQ(rt.limbo_size(), 0u);
}

TEST(NorecConcurrent, CounterIncrementsAreAtomic) {
  Runtime rt(with_backend(BackendKind::kNorec));
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  TVar<std::int64_t> counter(0);
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        atomically(ctx, [&](Txn& tx) { counter.write(tx, counter.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.unsafe_read(), kThreads * kIncrements);
  EXPECT_EQ(rt.norec_seq().load(),
            2ull * static_cast<unsigned>(kThreads) * kIncrements);
}

TEST(Tl2Protocol, ReadAbortsInsteadOfExtending) {
  // The protocol split from orec_swiss: a stripe committed after the read
  // snapshot aborts the reader instead of triggering a timestamp extension.
  Runtime rt(with_backend(BackendKind::kTl2));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(1), y(2);
  reader.begin(true);
  Txn rtx(reader);
  EXPECT_EQ(x.read(rtx), 1);
  atomically(writer, [&](Txn& tx) { y.write(tx, 20); });
  EXPECT_THROW((void)y.read(rtx), detail::AbortTx);
  reader.rollback(AbortCause::kValidationFailed);
  EXPECT_EQ(snapshot(reader.stats()).extensions, 0u)
      << "TL2 must never extend";
}

TEST(Tl2Protocol, WritesNeverLockBeforeCommit) {
  Runtime rt(with_backend(BackendKind::kTl2));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  const Orec& orec = rt.orecs().for_address(&x);
  ctx.begin(true);
  Txn tx(ctx);
  x.write(tx, 42);
  EXPECT_FALSE(is_locked(orec.load()))
      << "TL2 is commit-time only, regardless of the lock_timing knob";
  EXPECT_EQ(x.read(tx), 42) << "read-own-write through the buffer";
  EXPECT_EQ(x.unsafe_read(), 0) << "write-back must defer";
  ctx.commit();
  EXPECT_FALSE(is_locked(orec.load()));
  EXPECT_EQ(x.unsafe_read(), 42);
  EXPECT_EQ(rt.clock().load(), 1u) << "one writing commit, one clock tick";
}

TEST(Tl2Protocol, CommitAbortsOnForeignLockInsteadOfWaiting) {
  Runtime rt(with_backend(BackendKind::kTl2));
  TxnDesc& a = rt.register_thread();
  TxnDesc& b = rt.register_thread();
  TVar<std::int64_t> x(0);
  // b write-locks x's stripe by hand (simulating a stalled committer).
  Orec& orec = rt.orecs().for_address(&x);
  const LockWord pre = orec.load();
  ASSERT_TRUE(orec.try_lock(pre, &b));
  a.begin(true);
  Txn atx(a);
  x.write(atx, 1);
  EXPECT_THROW(a.commit(), detail::AbortTx);
  a.rollback(AbortCause::kWriteConflict);
  orec.restore(pre);
  EXPECT_EQ(x.unsafe_read(), 0);
}

TEST(Tl2Protocol, CommitDetectsInterveningWriter) {
  Runtime rt(with_backend(BackendKind::kTl2));
  TxnDesc& a = rt.register_thread();
  TxnDesc& b = rt.register_thread();
  TVar<std::int64_t> x(0);
  a.begin(true);
  Txn atx(a);
  const auto seen = x.read(atx);
  x.write(atx, seen + 1);
  atomically(b, [&](Txn& tx) { x.write(tx, 100); });
  EXPECT_THROW(a.commit(), detail::AbortTx);
  a.rollback(AbortCause::kValidationFailed);
  EXPECT_EQ(x.unsafe_read(), 100) << "B's commit must survive";
}

TEST(TwoPlProtocol, WritesGoInPlaceAndUndoRestoresPreImages) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(1);
  atomically(ctx, [&](Txn& tx) {
    x.write(tx, 2);
    EXPECT_EQ(x.unsafe_read(), 2) << "eager engine writes in place";
    EXPECT_EQ(x.read(tx), 2) << "read-after-own-write loads memory";
  });
  EXPECT_EQ(x.unsafe_read(), 2);
  // Aborted attempts must restore the pre-image, even through repeated
  // writes to one address.
  int attempts = 0;
  EXPECT_THROW(atomically(ctx,
                          [&](Txn& tx) {
                            ++attempts;
                            x.write(tx, 50);
                            x.write(tx, 60);
                            throw std::logic_error("boom");
                          }),
               std::logic_error);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(x.unsafe_read(), 2) << "undo log must restore the pre-image";
  const RwLock& l = rt.rwlocks().for_address(&x);
  EXPECT_EQ(l.load(), 0u) << "all locks released after abort";
}

TEST(TwoPlProtocol, CommitTimestampDrawnWhileHoldingLocks) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  for (int i = 1; i <= 3; ++i) {
    atomically(ctx, [&](Txn& tx) { x.write(tx, x.read(tx) + 1); });
    EXPECT_EQ(ctx.last_commit_timestamp(), static_cast<std::uint64_t>(i));
  }
  // Read-only: serializes at the clock value read at commit.
  atomically(ctx, [&](Txn& tx) { (void)x.read(tx); });
  EXPECT_EQ(ctx.last_commit_timestamp(), 0u);
  EXPECT_EQ(ctx.last_read_timestamp(), 3u);
  EXPECT_EQ(rt.aggregate_stats().read_only_commits, 1u);
}

TEST(TwoPlProtocol, ConflictingWriterAbortsWithoutWaiting) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& holder = rt.register_thread();
  TVar<std::int64_t> x(0);
  holder.begin(true);
  Txn htx(holder);
  x.write(htx, 1);  // holder now write-locks x's stripe

  // A second context must abort immediately on the held lock (the no-wait
  // rule that keeps eager 2PL deadlock-free), never block.
  TxnDesc& contender = rt.register_thread();
  contender.begin(true);
  Txn ctx2(contender);
  EXPECT_THROW(x.write(ctx2, 9), detail::AbortTx);
  contender.rollback(AbortCause::kWriteConflict);
  EXPECT_EQ(snapshot(contender.stats())
                .aborts[static_cast<std::size_t>(AbortCause::kWriteConflict)],
            1u);
  holder.commit();
  EXPECT_EQ(x.unsafe_read(), 1);
}

TEST(TwoPlProtocol, UpgradeOwnReadLockToWriteLock) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(7);
  atomically(ctx, [&](Txn& tx) {
    const auto v = x.read(tx);   // read lock
    const auto v2 = x.read(tx);  // second read unit on the same stripe
    EXPECT_EQ(v, v2);
    x.write(tx, v + 1);  // upgrade: all units are ours
  });
  EXPECT_EQ(x.unsafe_read(), 8);
  const RwLock& l = rt.rwlocks().for_address(&x);
  EXPECT_EQ(l.load(), 0u) << "upgrade must not leak read units";
}

TEST(TwoPlProtocol, ForeignReaderBlocksUpgradeWithoutDeadlock) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& upgrader = rt.register_thread();
  TVar<std::int64_t> x(0);
  reader.begin(true);
  Txn rtx(reader);
  (void)x.read(rtx);  // foreign read unit on x's stripe

  upgrader.begin(true);
  Txn utx(upgrader);
  (void)x.read(utx);
  // Upgrade sees a foreign unit: the no-wait rule aborts immediately.
  EXPECT_THROW(x.write(utx, 1), detail::AbortTx);
  upgrader.rollback(AbortCause::kWriteConflict);
  reader.commit();
  const RwLock& l = rt.rwlocks().for_address(&x);
  EXPECT_EQ(l.load(), 0u);
}

TEST(TwoPlProtocol, StarvationTokenClaimedAfterRepeatedAborts) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& victim = rt.register_thread();
  TxnDesc& holder = rt.register_thread();
  TVar<std::int64_t> x(0);

  holder.begin(true);
  Txn htx(holder);
  x.write(htx, 1);  // park a write lock on x's stripe

  // Drive the victim past the escalation threshold.
  for (std::uint32_t i = 0; i < TwoPlUndoEngine::kPrioAbortThreshold; ++i) {
    victim.begin(i == 0);
    EXPECT_EQ(rt.prio_token().load(), nullptr)
        << "escalation must not trigger before the threshold (attempt " << i
        << ")";
    Txn vtx(victim);
    EXPECT_THROW(x.write(vtx, 9), detail::AbortTx);
    victim.rollback(AbortCause::kWriteConflict);
  }
  // The next attempt crosses the threshold and claims the token.
  victim.begin(false);
  EXPECT_EQ(rt.prio_token().load(), &victim)
      << "the starving transaction must hold the priority token";
  {
    Txn vtx(victim);
    TVar<std::int64_t> y(0);
    y.write(vtx, 1);  // free stripe: commits cleanly
    victim.commit();
  }
  EXPECT_EQ(rt.prio_token().load(), nullptr)
      << "commit must hand the token back";
  holder.commit();
  EXPECT_EQ(x.unsafe_read(), 1);
}

TEST(TwoPlProtocol, RwLockTableAllocatedOnlyWhenNeeded) {
  // The 8 MiB rwlock table is lazily allocated: orec-family runtimes never
  // pay for it, a 2plundo runtime allocates it at construction, and an
  // online switch allocates it before the first 2plundo transaction.
  Runtime orec_rt(with_backend(BackendKind::kOrecSwiss));
  Runtime twopl_rt(with_backend(BackendKind::k2plUndo));
  EXPECT_TRUE(orec_rt.try_set_backend(BackendKind::k2plUndo));
  TxnDesc& ctx = orec_rt.register_thread();
  TVar<std::int64_t> x(0);
  atomically(ctx, [&](Txn& tx) { x.write(tx, 5); });
  EXPECT_EQ(x.unsafe_read(), 5);
}

TEST(BackendCoexistence, MixedRuntimesShareOneProcess) {
  // One orec runtime and one NOrec runtime, active concurrently on
  // interleaved threads: the global-clock world and the sequence-lock
  // world must not bleed into each other.
  Runtime orec_rt(with_backend(BackendKind::kOrecSwiss));
  Runtime norec_rt(with_backend(BackendKind::kNorec));
  TVar<std::int64_t> a(0), b(0);
  constexpr int kThreads = 2;
  constexpr int kOps = 800;
  util::SpinBarrier barrier(2 * kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxnDesc& ctx = orec_rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomically(ctx, [&](Txn& tx) { a.write(tx, a.read(tx) + 1); });
      }
    });
    threads.emplace_back([&] {
      TxnDesc& ctx = norec_rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomically(ctx, [&](Txn& tx) { b.write(tx, b.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.unsafe_read(), kThreads * kOps);
  EXPECT_EQ(b.unsafe_read(), kThreads * kOps);
  EXPECT_EQ(orec_rt.clock().load(), static_cast<unsigned>(kThreads) * kOps);
  EXPECT_EQ(orec_rt.norec_seq().load(), 0u);
  EXPECT_EQ(norec_rt.clock().load(), 0u);
  EXPECT_EQ(norec_rt.norec_seq().load(),
            2ull * static_cast<unsigned>(kThreads) * kOps);
}

TEST(BackendWorkloads, FullRegistrySmokesOnNorec) {
  // Every registered workload must run unmodified on the NOrec backend and
  // still verify: this is the cross-backend acceptance gate in miniature.
  for (const auto name : workloads::known_workloads()) {
    Runtime rt(with_backend(BackendKind::kNorec));
    auto workload = workloads::make_workload(name, rt);
    constexpr int kThreads = 2;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(40 + t);
        barrier.arrive_and_wait();
        for (int i = 0; i < 30 && !workload->done(); ++i) {
          workload->run_task(ctx, rng);
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string error;
    EXPECT_TRUE(workload->verify(&error))
        << "workload=" << name << ": " << error;
    // montecarlo is deliberately non-transactional (Workload-interface-only
    // demo); every other workload must have committed through NOrec.
    if (name != "montecarlo") {
      EXPECT_GT(rt.aggregate_stats().commits, 0u) << "workload=" << name;
    }
  }
}

}  // namespace
}  // namespace rubic::stm

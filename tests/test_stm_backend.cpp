// Backend-layer tests: name/parse round-trips, NOrec protocol semantics
// (sequence-lock accounting, value-based validation, ABA tolerance,
// write-back deferral), cross-backend coexistence in one process, and a
// full workload-registry smoke run on NOrec.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/workloads/registry.hpp"

namespace rubic::stm {
namespace {

RuntimeConfig with_backend(BackendKind backend) {
  RuntimeConfig cfg;
  cfg.backend = backend;
  return cfg;
}

TEST(BackendRegistry, NamesAndParseRoundTrip) {
  const auto all = known_backends();
  ASSERT_EQ(all.size(), 2u);
  for (const BackendKind k : all) {
    const auto parsed = parse_backend(backend_name(k));
    ASSERT_TRUE(parsed.has_value()) << backend_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(backend_name(BackendKind::kOrecSwiss), "orec_swiss");
  EXPECT_EQ(backend_name(BackendKind::kNorec), "norec");
}

TEST(BackendRegistry, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("tl2").has_value());
  EXPECT_FALSE(parse_backend("OREC_SWISS").has_value());
  EXPECT_FALSE(parse_backend("norec ").has_value());
}

TEST(BackendRegistry, TxnDescReportsItsRuntimeBackend) {
  for (const BackendKind k : known_backends()) {
    Runtime rt(with_backend(k));
    EXPECT_EQ(rt.backend(), k);
    EXPECT_EQ(rt.register_thread().backend(), k);
  }
}

TEST(NorecProtocol, WriteBackIsDeferredUntilCommit) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(1);
  atomically(ctx, [&](Txn& tx) {
    x.write(tx, 2);
    EXPECT_EQ(x.unsafe_read(), 1) << "NOrec must buffer until commit";
    EXPECT_EQ(x.read(tx), 2) << "read-own-writes must see the buffer";
  });
  EXPECT_EQ(x.unsafe_read(), 2);
}

TEST(NorecProtocol, SequenceAdvancesByTwoPerWritingCommit) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  EXPECT_EQ(rt.norec_seq().load(), 0u);
  for (int i = 1; i <= 5; ++i) {
    atomically(ctx, [&](Txn& tx) { x.write(tx, i); });
    EXPECT_EQ(rt.norec_seq().load(), 2u * static_cast<unsigned>(i));
  }
  // Read-only commits never touch the sequence lock or the version clock.
  atomically(ctx, [&](Txn& tx) { (void)x.read(tx); });
  EXPECT_EQ(rt.norec_seq().load(), 10u);
  EXPECT_EQ(rt.clock().load(), 0u);
  EXPECT_EQ(rt.aggregate_stats().read_only_commits, 1u);
}

TEST(NorecProtocol, ValueValidationToleratesSameValueRepublish) {
  // ABA at the value level is not a conflict under NOrec: a foreign commit
  // that leaves every value this transaction read unchanged extends the
  // snapshot instead of aborting it.
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(5), y(9);
  int attempts = 0;
  const std::int64_t got = atomically(reader, [&](Txn& tx) {
    ++attempts;
    const auto vx = x.read(tx);
    if (attempts == 1) {
      // Foreign commit republishing the same value: bumps the sequence,
      // changes nothing the reader saw.
      atomically(writer, [&](Txn& wtx) { x.write(wtx, 5); });
    }
    return vx + y.read(tx);  // y's read forces revalidation
  });
  EXPECT_EQ(got, 14);
  EXPECT_EQ(attempts, 1) << "same-value republish must not abort the reader";
  const auto stats = rt.aggregate_stats();
  EXPECT_GE(stats.extensions, 1u) << "revalidation must extend the snapshot";
  EXPECT_EQ(stats.total_aborts(), 0u);
}

TEST(NorecProtocol, ValueValidationAbortsOnChangedValue) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(5), y(9);
  int attempts = 0;
  const std::int64_t got = atomically(reader, [&](Txn& tx) {
    ++attempts;
    const auto vx = x.read(tx);
    if (attempts == 1) {
      atomically(writer, [&](Txn& wtx) { x.write(wtx, 6); });
    }
    return vx + y.read(tx);
  });
  EXPECT_EQ(got, 15) << "the retry must observe the committed value";
  EXPECT_EQ(attempts, 2);
  const auto stats = rt.aggregate_stats();
  EXPECT_EQ(
      stats.aborts[static_cast<std::size_t>(AbortCause::kValidationFailed)],
      1u);
}

TEST(NorecProtocol, WriterCommitRevalidatesAgainstInterveningCommit) {
  // A writer whose read set was invalidated between its last read and its
  // commit-time CAS must abort rather than publish a stale update.
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& rmw = rt.register_thread();
  TxnDesc& other = rt.register_thread();
  TVar<std::int64_t> x(0);
  int attempts = 0;
  atomically(rmw, [&](Txn& tx) {
    ++attempts;
    const auto v = x.read(tx);
    if (attempts == 1) {
      atomically(other, [&](Txn& otx) { x.write(otx, x.read(otx) + 1); });
    }
    x.write(tx, v + 1);
  });
  EXPECT_EQ(attempts, 2) << "lost update must be caught at commit";
  EXPECT_EQ(x.unsafe_read(), 2);
}

TEST(NorecProtocol, IgnoresOrecOnlyConfigKnobs) {
  // cm / lock_timing have no meaning under NOrec; any combination must
  // behave identically (and correctly).
  for (const CmPolicy cm : {CmPolicy::kTimidBackoff, CmPolicy::kGreedyTimestamp}) {
    for (const LockTiming t : {LockTiming::kEncounterTime, LockTiming::kCommitTime}) {
      RuntimeConfig cfg = with_backend(BackendKind::kNorec);
      cfg.cm = cm;
      cfg.lock_timing = t;
      Runtime rt(cfg);
      TxnDesc& ctx = rt.register_thread();
      TVar<std::int64_t> x(0);
      for (int i = 0; i < 50; ++i) {
        atomically(ctx, [&](Txn& tx) { x.write(tx, x.read(tx) + 1); });
      }
      EXPECT_EQ(x.unsafe_read(), 50);
      EXPECT_EQ(rt.norec_seq().load(), 100u);
    }
  }
}

TEST(NorecProtocol, RetryBudgetAndUserRetryBehaveAsOnOrec) {
  RuntimeConfig cfg = with_backend(BackendKind::kNorec);
  cfg.max_retries = 3;
  Runtime rt(cfg);
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  int attempts = 0;
  EXPECT_THROW(atomically(ctx,
                          [&](Txn& tx) {
                            ++attempts;
                            x.write(tx, 7);
                            tx.retry();
                          }),
               RetriesExhausted);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(x.unsafe_read(), 0) << "no aborted attempt may have written back";
  EXPECT_EQ(rt.norec_seq().load(), 0u)
      << "aborted writers must leave the sequence lock untouched";
  EXPECT_FALSE(ctx.active());
  // The context stays usable.
  atomically(ctx, [&](Txn& tx) { x.write(tx, 1); });
  EXPECT_EQ(x.unsafe_read(), 1);
}

TEST(NorecProtocol, EpochReclamationWorks) {
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& ctx = rt.register_thread();
  auto* victim = new std::uint64_t(0);
  atomically(ctx, [&](Txn& tx) { tx.free(victim); });
  EXPECT_EQ(rt.limbo_size(), 1u);
  rt.try_advance_epoch(ctx);
  rt.try_advance_epoch(ctx);
  EXPECT_EQ(rt.limbo_size(), 0u);
}

TEST(NorecConcurrent, CounterIncrementsAreAtomic) {
  Runtime rt(with_backend(BackendKind::kNorec));
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  TVar<std::int64_t> counter(0);
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        atomically(ctx, [&](Txn& tx) { counter.write(tx, counter.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.unsafe_read(), kThreads * kIncrements);
  EXPECT_EQ(rt.norec_seq().load(),
            2ull * static_cast<unsigned>(kThreads) * kIncrements);
}

TEST(BackendCoexistence, MixedRuntimesShareOneProcess) {
  // One orec runtime and one NOrec runtime, active concurrently on
  // interleaved threads: the global-clock world and the sequence-lock
  // world must not bleed into each other.
  Runtime orec_rt(with_backend(BackendKind::kOrecSwiss));
  Runtime norec_rt(with_backend(BackendKind::kNorec));
  TVar<std::int64_t> a(0), b(0);
  constexpr int kThreads = 2;
  constexpr int kOps = 800;
  util::SpinBarrier barrier(2 * kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      TxnDesc& ctx = orec_rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomically(ctx, [&](Txn& tx) { a.write(tx, a.read(tx) + 1); });
      }
    });
    threads.emplace_back([&] {
      TxnDesc& ctx = norec_rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomically(ctx, [&](Txn& tx) { b.write(tx, b.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.unsafe_read(), kThreads * kOps);
  EXPECT_EQ(b.unsafe_read(), kThreads * kOps);
  EXPECT_EQ(orec_rt.clock().load(), static_cast<unsigned>(kThreads) * kOps);
  EXPECT_EQ(orec_rt.norec_seq().load(), 0u);
  EXPECT_EQ(norec_rt.clock().load(), 0u);
  EXPECT_EQ(norec_rt.norec_seq().load(),
            2ull * static_cast<unsigned>(kThreads) * kOps);
}

TEST(BackendWorkloads, FullRegistrySmokesOnNorec) {
  // Every registered workload must run unmodified on the NOrec backend and
  // still verify: this is the cross-backend acceptance gate in miniature.
  for (const auto name : workloads::known_workloads()) {
    Runtime rt(with_backend(BackendKind::kNorec));
    auto workload = workloads::make_workload(name, rt);
    constexpr int kThreads = 2;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(40 + t);
        barrier.arrive_and_wait();
        for (int i = 0; i < 30 && !workload->done(); ++i) {
          workload->run_task(ctx, rng);
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string error;
    EXPECT_TRUE(workload->verify(&error))
        << "workload=" << name << ": " << error;
    // montecarlo is deliberately non-transactional (Workload-interface-only
    // demo); every other workload must have committed through NOrec.
    if (name != "montecarlo") {
      EXPECT_GT(rt.aggregate_stats().commits, 0u) << "workload=" << name;
    }
  }
}

}  // namespace
}  // namespace rubic::stm

// Chaos suite for the deterministic fault-injection layer (src/fault/).
//
// Every test arms a seeded FaultPlan against the hook points threaded
// through the stack — monitor tick, controller output, worker loop,
// co-location bus, STM commit — and asserts the graceful-degradation
// contracts: the applied level never leaves [1, pool_size], the monitor
// never deadlocks, the report is still produced, and two runs under the
// same seed observe the byte-identical fault schedule (and, with every
// nondeterministic input scripted, byte-identical monitor traces).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/control/contention.hpp"
#include "src/control/factory.hpp"
#include "src/control/fixed.hpp"
#include "src/control/guard.hpp"
#include "src/fault/fault.hpp"
#include "src/ipc/colocation_bus.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/runtime/monitor.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/workloads/rbset_workload.hpp"

namespace rubic {
namespace {

using namespace std::chrono_literals;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Every test must leave the process disarmed even when an assertion fails
// mid-body; gtest keeps running the remaining tests in the same process.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

using PlanTest = FaultInjectionTest;
using GuardTest = FaultInjectionTest;
using MonitorChaosTest = FaultInjectionTest;
using PoolChaosTest = FaultInjectionTest;
using BusChaosTest = FaultInjectionTest;
using StmChaosTest = FaultInjectionTest;
using EndToEndChaosTest = FaultInjectionTest;

template <typename Pred>
bool eventually(Pred&& pred, milliseconds limit = 10s) {
  const auto deadline = steady_clock::now() + limit;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

std::uint64_t bits_of(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

// A trivial workload with instantaneous tasks (no STM traffic).
class NopWorkload final : public workloads::Workload {
 public:
  std::string_view name() const override { return "nop"; }
  void run_task(stm::TxnDesc&, util::Xoshiro256&) override {
    std::this_thread::yield();
  }
  bool verify(std::string*) override { return true; }
};

// Records what actually reaches the policy behind the guard.
class CountingController final : public control::Controller {
 public:
  explicit CountingController(int level) : level_(level) {}
  int initial_level() const override { return level_; }
  int on_sample(double throughput) override {
    samples_.push_back(throughput);
    return level_;
  }
  void reset() override { samples_.clear(); }
  std::string_view name() const override { return "Counting"; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  int level_;
  std::vector<double> samples_;
};

class ThrowingController final : public control::Controller {
 public:
  // Throws from the N-th on_sample onwards (0 = always).
  explicit ThrowingController(int good_calls, int good_level = 5)
      : good_calls_(good_calls), good_level_(good_level) {}
  int initial_level() const override {
    if (good_calls_ == 0) throw std::runtime_error("no initial level either");
    return good_level_;
  }
  int on_sample(double) override {
    if (++calls_ > good_calls_) throw std::runtime_error("policy blew up");
    return good_level_;
  }
  void reset() override { throw std::runtime_error("reset blew up"); }
  std::string_view name() const override { return "Throwing"; }

 private:
  int good_calls_;
  int good_level_;
  int calls_ = 0;
};

// ---------------------------------------------------------------------------
// FaultPlan core: parsing, scheduling, determinism, the disarmed fast path.

TEST_F(PlanTest, ParseEmptyAndSeedOnly) {
  EXPECT_EQ(fault::Plan::parse("")->seed(), 0u);
  EXPECT_EQ(fault::Plan::parse("seed=42")->seed(), 42u);
  // Seed position is irrelevant (two-pass parse).
  EXPECT_EQ(fault::Plan::parse("stm_conflict:prob=1;seed=9")->seed(), 9u);
}

TEST_F(PlanTest, ParseFullRuleAndSpecialValues) {
  auto plan = fault::Plan::parse(
      "seed=3;monitor_stall:ms=25,from=2,until=10,every=4,prob=1");
  // Hits 0,1 are before the window; 2, 6, 10 fire; 14 is past it.
  std::vector<bool> fired;
  for (int i = 0; i < 15; ++i) {
    fired.push_back(bool(plan->fire(fault::Site::kMonitorStall)));
  }
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(fired[static_cast<std::size_t>(i)], i == 2 || i == 6 || i == 10)
        << "hit " << i;
  }
  EXPECT_EQ(plan->hits(fault::Site::kMonitorStall), 15u);
  EXPECT_EQ(plan->fires(fault::Site::kMonitorStall), 3u);
  const auto log = plan->log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].hit, 2u);
  EXPECT_EQ(log[1].hit, 6u);
  EXPECT_EQ(log[2].hit, 10u);
  EXPECT_EQ(log[0].value, 25.0);

  const auto nan_fire =
      fault::Plan::parse("sample_corrupt:value=nan")
          ->fire(fault::Site::kMonitorSampleCorrupt);
  ASSERT_TRUE(bool(nan_fire));
  EXPECT_TRUE(std::isnan(nan_fire.value));
  const auto inf_fire =
      fault::Plan::parse("sample_corrupt:value=-inf")
          ->fire(fault::Site::kMonitorSampleCorrupt);
  ASSERT_TRUE(bool(inf_fire));
  EXPECT_EQ(inf_fire.value, -std::numeric_limits<double>::infinity());
}

TEST_F(PlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(fault::Plan::parse("bogus_site"), std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:wat=1"),
               std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:prob=1.5"),
               std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:ms=abc"),
               std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:from=5,until=2"),
               std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:every=0"),
               std::invalid_argument);
  EXPECT_THROW(fault::Plan::parse("monitor_stall:from="),
               std::invalid_argument);
}

TEST_F(PlanTest, SameSeedSameSchedule) {
  const std::string spec =
      "seed=1234;stm_conflict:prob=0.5;worker_stall:us=100,seeded,prob=0.7";
  auto a = fault::Plan::parse(spec);
  auto b = fault::Plan::parse(spec);
  for (int i = 0; i < 256; ++i) {
    a->fire(fault::Site::kStmForceConflict);
    a->fire(fault::Site::kWorkerStall);
    b->fire(fault::Site::kStmForceConflict);
    b->fire(fault::Site::kWorkerStall);
  }
  // Probabilistic rules actually discriminate (neither all-fire nor none).
  EXPECT_GT(a->fires(fault::Site::kStmForceConflict), 0u);
  EXPECT_LT(a->fires(fault::Site::kStmForceConflict), 256u);
  // The determinism contract: identical logs, entry for entry.
  EXPECT_EQ(a->log(), b->log());

  // A different seed yields a different schedule (256 independent draws;
  // a collision across all of them is beyond astronomically unlikely).
  auto c = fault::Plan::parse("seed=99;stm_conflict:prob=0.5;"
                              "worker_stall:us=100,seeded,prob=0.7");
  for (int i = 0; i < 256; ++i) {
    c->fire(fault::Site::kStmForceConflict);
    c->fire(fault::Site::kWorkerStall);
  }
  EXPECT_NE(a->log(), c->log());
}

TEST_F(PlanTest, SeededValuesStayInRange) {
  auto plan = fault::Plan::parse("seed=5;worker_stall:us=100,seeded");
  bool varied = false;
  double first = -1.0;
  for (int i = 0; i < 64; ++i) {
    const auto f = plan->fire(fault::Site::kWorkerStall);
    ASSERT_TRUE(bool(f));
    EXPECT_GE(f.value, 0.0);
    EXPECT_LT(f.value, 100.0);
    if (i == 0) first = f.value;
    if (f.value != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST_F(PlanTest, DisarmedProbeIsInertAndArmedIsScoped) {
  ASSERT_EQ(fault::armed(), nullptr);
  EXPECT_FALSE(bool(fault::probe(fault::Site::kStmForceConflict)));
  auto plan = fault::Plan::parse("stm_conflict:prob=1");
  {
    fault::Armed armed(*plan);
    EXPECT_EQ(fault::armed(), plan.get());
    EXPECT_TRUE(bool(fault::probe(fault::Site::kStmForceConflict)));
  }
  EXPECT_EQ(fault::armed(), nullptr);
  EXPECT_FALSE(bool(fault::probe(fault::Site::kStmForceConflict)));
  // The disarmed probe never touched the plan's counters.
  EXPECT_EQ(plan->hits(fault::Site::kStmForceConflict), 1u);
}

// ---------------------------------------------------------------------------
// ControllerGuard: clamping, absorption, garbage injection. (Satellite: the
// guard holds [1, max] for EVERY registered policy under hostile inputs.)

control::PolicyConfig guard_policy_config() {
  control::PolicyConfig config;
  config.contexts = 8;
  config.pool_size = 16;
  config.allocator = std::make_shared<control::CentralAllocator>(8);
  return config;
}

TEST_F(GuardTest, EveryKnownPolicyStaysInBoundsUnderHostileInputs) {
  const double hostile[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            -5.0,
                            1e300,
                            0.0,
                            1e6,
                            123.0};
  for (std::string_view policy : control::known_policies()) {
    SCOPED_TRACE(std::string(policy));
    control::ControllerGuard guard(
        control::make_controller(policy, guard_policy_config()),
        control::LevelBounds{1, 16});
    const int initial = guard.initial_level();
    EXPECT_GE(initial, 1);
    EXPECT_LE(initial, 16);
    for (int round = 0; round < 8; ++round) {
      for (double sample : hostile) {
        const int level = guard.on_sample(sample);
        EXPECT_GE(level, 1) << "sample " << sample;
        EXPECT_LE(level, 16) << "sample " << sample;
        EXPECT_EQ(level, guard.level());
      }
      if (guard.consumes_contention()) {
        for (double ratio : {std::numeric_limits<double>::quiet_NaN(), -5.0,
                             2.0, 0.5}) {
          const int level = guard.on_commit_ratio(ratio);
          EXPECT_GE(level, 1) << "ratio " << ratio;
          EXPECT_LE(level, 16) << "ratio " << ratio;
        }
      }
    }
    guard.reset();
    EXPECT_GE(guard.level(), 1);
    EXPECT_LE(guard.level(), 16);
    EXPECT_GT(guard.sanitized_inputs(), 0u);
  }
}

TEST_F(GuardTest, AbsorbsThrowingPolicyAndHoldsLastGoodLevel) {
  ThrowingController inner(/*good_calls=*/2, /*good_level=*/5);
  control::ControllerGuard guard(inner, control::LevelBounds{1, 8});
  EXPECT_EQ(guard.on_sample(100.0), 5);
  EXPECT_EQ(guard.on_sample(100.0), 5);
  // From here on every call throws; the guard answers 5 and keeps going.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(guard.on_sample(100.0), 5);
  EXPECT_EQ(guard.absorbed_exceptions(), 4u);
  // reset() throws too; the guard swallows it and re-derives the level.
  guard.reset();
  EXPECT_GE(guard.level(), 1);
}

TEST_F(GuardTest, FloorsPolicyWhoseInitialLevelThrows) {
  ThrowingController inner(/*good_calls=*/0);
  control::ControllerGuard guard(inner, control::LevelBounds{1, 8});
  EXPECT_EQ(guard.initial_level(), 1);
  EXPECT_EQ(guard.level(), 1);
}

TEST_F(GuardTest, InjectedGarbageAndThrowsNeverEscapeTheBounds) {
  auto plan = fault::Plan::parse(
      "seed=11;controller_garbage:level=inf,every=3;controller_throw:from=1,"
      "every=5");
  fault::Armed armed(*plan);
  CountingController inner(3);
  control::ControllerGuard guard(inner, control::LevelBounds{1, 8});
  for (int i = 0; i < 30; ++i) {
    const int level = guard.on_sample(50.0);
    EXPECT_GE(level, 1);
    EXPECT_LE(level, 8);
  }
  EXPECT_GT(guard.clamped_outputs(), 0u);   // inf garbage was clamped
  EXPECT_GT(guard.absorbed_exceptions(), 0u);
  EXPECT_GT(plan->fires(fault::Site::kControllerGarbage), 0u);
  EXPECT_GT(plan->fires(fault::Site::kControllerThrow), 0u);
}

// ---------------------------------------------------------------------------
// Monitor: sample sanitization, overrun skip, stall tolerance, determinism.

runtime::MonitorConfig chaos_monitor_config(std::uint64_t max_rounds) {
  runtime::MonitorConfig config;
  config.period = 2ms;
  config.raise_priority = false;
  config.max_rounds = max_rounds;
  return config;
}

TEST_F(MonitorChaosTest, SanitizesCorruptSamplesToZero) {
  auto plan = fault::Plan::parse("sample_corrupt:value=nan,every=1");
  fault::Armed armed(*plan);
  stm::Runtime rt;
  NopWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 2, .initial_level = 1});
  CountingController controller(1);
  runtime::Monitor monitor(pool, controller, chaos_monitor_config(6));
  ASSERT_TRUE(eventually([&] { return monitor.rounds() >= 6; }));
  monitor.stop();
  EXPECT_EQ(monitor.sanitized_samples(), monitor.rounds());
  for (const auto& sample : monitor.trace()) {
    EXPECT_EQ(sample.throughput, 0.0);  // NaN never reaches the trace
    EXPECT_GE(sample.level, 1);
    EXPECT_LE(sample.level, 2);
  }
  // The policy saw the clamped 0.0, not the NaN.
  for (double s : controller.samples()) EXPECT_EQ(s, 0.0);
}

TEST_F(MonitorChaosTest, StalledRoundsAreSkippedNotFedToThePolicy) {
  // Every round stalls 25 ms against a 2 ms period (overrun_factor 8 →
  // 16 ms threshold): the measured duration flags each round as an overrun,
  // so the policy is never consulted and the level holds.
  auto plan = fault::Plan::parse("monitor_stall:ms=25,every=1");
  fault::Armed armed(*plan);
  stm::Runtime rt;
  NopWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 4, .initial_level = 2});
  CountingController controller(2);
  runtime::Monitor monitor(pool, controller, chaos_monitor_config(4));
  ASSERT_TRUE(eventually([&] { return monitor.rounds() >= 4; }));
  monitor.stop();  // must return promptly despite the injected stalls
  EXPECT_EQ(monitor.overrun_rounds(), monitor.rounds());
  EXPECT_TRUE(controller.samples().empty());
  EXPECT_EQ(pool.level(), 2);
}

TEST_F(MonitorChaosTest, ScriptedClockJumpCountsAsOverrun) {
  // The round claims half a second; real time stays at the 2 ms period.
  auto plan = fault::Plan::parse("clock_jump:ns=500000000,every=1");
  fault::Armed armed(*plan);
  stm::Runtime rt;
  NopWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 2, .initial_level = 1});
  CountingController controller(1);
  runtime::Monitor monitor(pool, controller, chaos_monitor_config(3));
  ASSERT_TRUE(eventually([&] { return monitor.rounds() >= 3; }));
  monitor.stop();
  EXPECT_EQ(monitor.overrun_rounds(), 3u);
  // Trace time is the accumulated scripted durations, exactly.
  ASSERT_EQ(monitor.trace().size(), 3u);
  EXPECT_EQ(monitor.trace()[2].elapsed, std::chrono::nanoseconds(1500000000));
}

std::vector<runtime::MonitorSample> run_scripted_monitor(
    const std::string& spec) {
  auto plan = fault::Plan::parse(spec);
  stm::Runtime rt;
  NopWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 4, .initial_level = 1});
  auto controller = control::make_controller("rubic", guard_policy_config());
  fault::Armed armed(*plan);
  runtime::Monitor monitor(pool, *controller, chaos_monitor_config(8));
  EXPECT_TRUE(eventually([&] { return monitor.rounds() >= 8; }));
  monitor.stop();
  return monitor.trace();
}

TEST_F(MonitorChaosTest, SameSeedSameTrace) {
  // With every round's duration and throughput sample scripted by the plan
  // (5 ms claimed rounds, seeded-but-deterministic throughput), the whole
  // trace is a pure function of the fault seed: two runs must match bit
  // for bit, across elapsed time, throughput and chosen level.
  const std::string spec =
      "seed=77;clock_jump:ns=5000000,every=1;"
      "sample_corrupt:value=1000,seeded,every=1";
  const auto first = run_scripted_monitor(spec);
  const auto second = run_scripted_monitor(spec);
  ASSERT_EQ(first.size(), 8u);
  ASSERT_EQ(second.size(), 8u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].elapsed.count(), second[i].elapsed.count()) << i;
    EXPECT_EQ(bits_of(first[i].throughput), bits_of(second[i].throughput))
        << i;
    EXPECT_EQ(first[i].level, second[i].level) << i;
  }
  // And a different seed yields different scripted samples.
  const auto other = run_scripted_monitor(
      "seed=78;clock_jump:ns=5000000,every=1;"
      "sample_corrupt:value=1000,seeded,every=1");
  bool any_difference = false;
  for (std::size_t i = 0; i < other.size(); ++i) {
    if (bits_of(other[i].throughput) != bits_of(first[i].throughput)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------------------------
// MalleablePool: injected worker preemption windows.

TEST_F(PoolChaosTest, WorkersKeepProgressingThroughStallWindows) {
  auto plan = fault::Plan::parse("seed=2;worker_stall:us=100,seeded,every=2");
  fault::Armed armed(*plan);
  stm::Runtime rt;
  NopWorkload workload;
  runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 4, .initial_level = 4});
  ASSERT_TRUE(eventually([&] { return pool.total_completed() > 1000; }));
  EXPECT_GT(plan->fires(fault::Site::kWorkerStall), 0u);
  const std::uint64_t before = pool.total_completed();
  ASSERT_TRUE(eventually([&] { return pool.total_completed() > before; }));
  pool.stop();  // a stalled worker must still notice the stop promptly
}

// ---------------------------------------------------------------------------
// Co-location bus: acquisition failure, heartbeat suppression, payload
// corruption — and the readers' plausibility screen.

std::string unique_bus_name(const char* tag) {
  static std::atomic<int> counter{0};
  return "/rubic-chaos-" + std::string(tag) + "-" +
         std::to_string(static_cast<int>(getpid())) + "-" +
         std::to_string(counter.fetch_add(1));
}

struct Unlinker {
  std::string name;
  ~Unlinker() { ipc::CoLocationBus::unlink(name); }
};

ipc::BusConfig chaos_bus_config(const std::string& name) {
  ipc::BusConfig config;
  config.name = name;
  config.contexts = 8;
  config.max_slots = 4;
  return config;
}

TEST_F(BusChaosTest, PayloadPlausibilityScreen) {
  ipc::SlotPayload p;
  EXPECT_TRUE(ipc::payload_plausible(p));
  auto corrupted = [&](auto&& mutate) {
    ipc::SlotPayload q;
    mutate(q);
    return ipc::payload_plausible(q);
  };
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) {
    q.commit_ratio = std::numeric_limits<double>::quiet_NaN();
  }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) { q.commit_ratio = 1.5; }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) {
    q.throughput = -std::numeric_limits<double>::infinity();
  }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) { q.level = -1; }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) { q.level = 1 << 21; }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) { q.tasks_per_second = -1.0; }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) { q.done = 7; }));
  EXPECT_FALSE(corrupted([](ipc::SlotPayload& q) {
    for (char& c : q.label) c = 'X';  // no NUL terminator
  }));
}

TEST_F(BusChaosTest, AcquireFailureWindowThenRecovery) {
  const std::string name = unique_bus_name("acquire");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(chaos_bus_config(name));
  auto plan = fault::Plan::parse("bus_acquire_fail:until=2");
  fault::Armed armed(*plan);
  // Three acquisition attempts fail inside the fault window…
  EXPECT_EQ(bus->acquire_slot("me"), -1);
  EXPECT_EQ(bus->acquire_slot("me"), -1);
  EXPECT_EQ(bus->acquire_slot("me"), -1);
  EXPECT_FALSE(bus->has_slot());
  // …and the fourth (past the window) succeeds — the capped-backoff retry
  // loop in rubic_colocate rides exactly this recovery.
  EXPECT_GE(bus->acquire_slot("me"), 0);
  EXPECT_TRUE(bus->has_slot());
}

TEST_F(BusChaosTest, SuppressedHeartbeatsGoStaleThenRecover) {
  const std::string name = unique_bus_name("suppress");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(chaos_bus_config(name));
  ASSERT_GE(bus->acquire_slot("victim"), 0);
  bus->publish(ipc::SlotSample{.level = 2, .throughput = 10.0});
  const auto before = bus->snapshot();
  ASSERT_EQ(before.size(), 1u);
  const std::uint64_t hb0 = before[0].payload.heartbeat;

  {
    auto plan = fault::Plan::parse("bus_suppress:every=1");
    fault::Armed armed(*plan);
    for (int i = 0; i < 3; ++i) {
      bus->publish(ipc::SlotSample{.level = 3, .throughput = 20.0});
    }
    EXPECT_EQ(plan->fires(fault::Site::kBusSuppressHeartbeat), 3u);
  }
  // Nothing reached shared memory: readers still see the old beat.
  const auto during = bus->snapshot();
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0].payload.heartbeat, hb0);
  EXPECT_EQ(during[0].payload.level, 2);

  // One clean publish recovers the slot completely (the writer-side shadow
  // kept advancing through the suppression window).
  bus->publish(ipc::SlotSample{.level = 3, .throughput = 20.0});
  const auto after = bus->snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].payload.heartbeat, hb0 + 4);
  EXPECT_EQ(after[0].payload.level, 3);
}

TEST_F(BusChaosTest, CorruptPayloadIsRejectedNotPropagated) {
  const std::string name = unique_bus_name("corrupt");
  Unlinker cleanup{name};
  auto bus = ipc::CoLocationBus::create_or_attach(chaos_bus_config(name));
  ASSERT_GE(bus->acquire_slot("scribbler"), 0);
  bus->publish(ipc::SlotSample{.level = 2, .throughput = 10.0});

  {
    auto plan = fault::Plan::parse("bus_corrupt:every=1");
    fault::Armed armed(*plan);
    bus->publish(ipc::SlotSample{.level = 3, .throughput = 20.0});
  }
  const auto peers = bus->snapshot();
  ASSERT_EQ(peers.size(), 1u);
  // The snapshot is flagged unusable, but the peer is NOT declared dead:
  // its pid is alive, so it keeps counting toward EqualShare's N.
  EXPECT_TRUE(peers[0].torn);
  EXPECT_TRUE(peers[0].corrupt);
  EXPECT_EQ(peers[0].state, ipc::PeerState::kAlive);
  EXPECT_EQ(bus->live_count(), 1);

  // The next clean publish restores a readable, plausible payload.
  bus->publish(ipc::SlotSample{.level = 3, .throughput = 20.0});
  const auto after = bus->snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].torn);
  EXPECT_FALSE(after[0].corrupt);
  EXPECT_EQ(after[0].payload.level, 3);
  EXPECT_STREQ(after[0].payload.label, "scribbler");
}

// ---------------------------------------------------------------------------
// STM: forced conflicts, the retry budget, and lock hygiene after the storm.
// (Satellite: RetriesExhausted after exactly the budgeted attempts, orecs
// left unlocked.)

TEST_F(StmChaosTest, AbortStormExhaustsRetryBudgetExactlyAndReleasesLocks) {
  // The forced-conflict probe sits in the backend-independent commit
  // prologue, so the storm must behave identically on every engine.
  for (const stm::BackendKind backend : stm::known_backends()) {
    stm::RuntimeConfig config;
    config.backend = backend;
    config.max_retries = 3;
    config.backoff_base = 1;  // keep the injected storm fast
    config.backoff_max = 4;
    stm::Runtime rt(config);
    stm::TxnDesc& ctx = rt.register_thread();
    stm::TVar<int> var(7);

    auto plan = fault::Plan::parse("stm_conflict:every=1");
    {
      fault::Armed armed(*plan);
      EXPECT_THROW(stm::atomically(ctx,
                                   [&](stm::Txn& tx) {
                                     var.write(tx, var.read(tx) + 1);
                                   }),
                   stm::RetriesExhausted);
    }
    // Exactly max_retries attempts reached commit, every one was aborted by
    // the injected conflict, none committed.
    EXPECT_EQ(plan->hits(fault::Site::kStmForceConflict), 3u);
    EXPECT_EQ(plan->fires(fault::Site::kStmForceConflict), 3u);
    const auto stats = rt.aggregate_stats();
    EXPECT_EQ(stats.commits, 0u);
    EXPECT_EQ(
        stats.aborts[static_cast<std::size_t>(stm::AbortCause::kFaultInjected)],
        3u);
    EXPECT_EQ(var.unsafe_read(), 7);  // no torn half-commit

    // The rollback released every lock (orecs / the NOrec sequence): a
    // fresh transaction on the same stripe commits first try once the plan
    // is disarmed.
    const int result = stm::atomically(ctx, [&](stm::Txn& tx) {
      var.write(tx, var.read(tx) + 1);
      return var.read(tx);
    });
    EXPECT_EQ(result, 8) << "backend=" << stm::backend_name(backend);
    EXPECT_EQ(rt.aggregate_stats().commits, 1u);
  }
}

TEST_F(StmChaosTest, ProbabilisticConflictInjectionStillMakesProgress) {
  for (const stm::BackendKind backend : stm::known_backends()) {
    stm::RuntimeConfig config;
    config.backend = backend;
    stm::Runtime rt(config);  // unlimited retries
    stm::TxnDesc& ctx = rt.register_thread();
    stm::TVar<int> var(0);
    auto plan = fault::Plan::parse("seed=4;stm_conflict:prob=0.3");
    fault::Armed armed(*plan);
    for (int i = 0; i < 100; ++i) {
      stm::atomically(ctx, [&](stm::Txn& tx) { var.write(tx, i); });
    }
    EXPECT_EQ(var.unsafe_read(), 99) << "backend=" << stm::backend_name(backend);
    const auto stats = rt.aggregate_stats();
    EXPECT_EQ(stats.commits, 100u);
    EXPECT_GT(
        stats.aborts[static_cast<std::size_t>(stm::AbortCause::kFaultInjected)],
        0u);
  }
}

// ---------------------------------------------------------------------------
// End to end: a TunedProcess survives a multi-fault storm and still
// produces a coherent report.

TEST_F(EndToEndChaosTest, TunedProcessSurvivesMultiFaultStorm) {
  auto plan = fault::Plan::parse(
      "seed=13;"
      "monitor_stall:ms=1,prob=0.2;"
      "sample_corrupt:value=nan,prob=0.3;"
      "controller_garbage:level=inf,prob=0.2;"
      "controller_throw:prob=0.1;"
      "worker_stall:us=200,seeded,prob=0.05;"
      "stm_conflict:prob=0.02");
  fault::Armed armed(*plan);

  stm::Runtime rt;
  workloads::RbSetParams params;
  params.initial_size = 1024;
  workloads::RbSetWorkload workload(rt, params);
  auto controller = control::make_controller("rubic", guard_policy_config());
  runtime::ProcessConfig config;
  config.pool = runtime::PoolConfig{.pool_size = 4, .initial_level = 2};
  config.monitor.period = 2ms;
  config.monitor.raise_priority = false;
  config.monitor.stm_runtime = &rt;
  runtime::TunedProcess process(rt, workload, *controller, config);
  const auto report = process.run_for(300ms);

  // The run completed and the report is coherent despite the storm.
  EXPECT_GT(report.monitor_rounds, 0u);
  EXPECT_GT(report.tasks_completed, 0u);
  EXPECT_GT(report.stm_stats.commits, 0u);
  EXPECT_GE(report.final_level, 1);
  EXPECT_LE(report.final_level, 4);
  for (const auto& sample : report.trace) {
    EXPECT_GE(sample.level, 1);
    EXPECT_LE(sample.level, 4);
    EXPECT_TRUE(std::isfinite(sample.throughput));
    EXPECT_GE(sample.throughput, 0.0);
  }
  // The storm actually happened…
  EXPECT_GT(plan->fires(fault::Site::kStmForceConflict), 0u);
  // …and the tree survived it intact.
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic

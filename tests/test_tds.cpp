// Tests for the transactional data-structure library (src/tds/):
//
//  - the shared serializability/stress suite every structure must pass on
//    every backend (seeded fill vs. reference model, single-threaded mixed
//    ops vs. std::map, 4-thread churn with operation-count accounting and
//    in-transaction snapshot ordering checks),
//  - structure-specific shape tests for the new skiplist and B+-tree,
//  - FIFO/ordering invariants for TQueue and TList under 4-thread
//    concurrent transactions on every backend (previously untested here),
//  - registry round-trips and the listing the CLI agreement rides on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/tds/btree.hpp"
#include "src/tds/harness.hpp"
#include "src/tds/registry.hpp"
#include "src/tds/skiplist.hpp"
#include "src/tds/tlist.hpp"
#include "src/tds/tqueue.hpp"
#include "src/util/listing.hpp"
#include "src/util/rng.hpp"
#include "src/util/spin_barrier.hpp"

namespace rubic::tds {
namespace {

stm::RuntimeConfig with_backend(stm::BackendKind kind) {
  stm::RuntimeConfig cfg;
  cfg.backend = kind;
  return cfg;
}

// --- registry + listing ---

TEST(TdsRegistry, KnownStructuresSortedAndConstructible) {
  const auto names = known_structures();
  ASSERT_EQ(names.size(), 5u);
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]) << "listing must stay sorted";
  }
  for (const auto name : names) {
    auto map = make_structure(name);
    ASSERT_NE(map, nullptr);
    EXPECT_EQ(map->structure(), name)
        << "structure() must round-trip the registry name";
  }
}

TEST(TdsRegistry, UnknownStructureNamesTheCandidates) {
  try {
    make_structure("btre");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto name : known_structures()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "error must list '" << name << "': " << msg;
    }
  }
}

TEST(TdsRegistry, ListingMatchesFormatNameList) {
  // The CLI prints util::format_name_list(known_structures()); pin the
  // rendered form so --list-structures output and the registry agree.
  EXPECT_EQ(util::format_name_list(known_structures()),
            "btree\nhashmap\nlist\nrbtree\nskiplist\n");
}

TEST(TdsRegistry, OrderedFlagMatchesStructure) {
  for (const auto name : known_structures()) {
    auto map = make_structure(name);
    EXPECT_EQ(map->ordered(), name != "hashmap");
  }
}

// --- TSet view ---

TEST(TSetView, MembershipOverAnyMap) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  auto map = make_structure("skiplist");
  TSet set(*map);
  stm::atomically(ctx, [&](stm::Txn& tx) {
    EXPECT_TRUE(set.add(tx, 7));
    EXPECT_FALSE(set.add(tx, 7));
    EXPECT_TRUE(set.contains(tx, 7));
    EXPECT_FALSE(set.contains(tx, 8));
    EXPECT_EQ(set.size(tx), 1);
    EXPECT_TRUE(set.remove(tx, 7));
    EXPECT_FALSE(set.remove(tx, 7));
  });
}

// --- the shared structure × backend suite ---

struct MatrixParam {
  std::string_view structure;
  stm::BackendKind backend;
};

std::vector<MatrixParam> matrix_params() {
  std::vector<MatrixParam> params;
  for (const auto structure : known_structures()) {
    for (const auto backend : stm::known_backends()) {
      params.push_back({structure, backend});
    }
  }
  return params;
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  return std::string(info.param.structure) + "_" +
         std::string(stm::backend_name(info.param.backend));
}

class StructureMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StructureMatrix, SeededFillMatchesReference) {
  stm::Runtime rt(with_backend(GetParam().backend));
  stm::TxnDesc& ctx = rt.register_thread();
  auto map = make_structure(GetParam().structure);
  const FillResult r = fill(*map, ctx, 512, 2048, /*seed=*/0xf111ed);
  EXPECT_EQ(r.inserted, 512u);
  EXPECT_GE(r.attempts, r.inserted);
  const auto model = reference_fill(512, 2048, /*seed=*/0xf111ed);
  std::string error;
  EXPECT_TRUE(verify_against(*map, model, &error)) << error;
}

TEST_P(StructureMatrix, MixedOpsMatchStdMap) {
  stm::Runtime rt(with_backend(GetParam().backend));
  stm::TxnDesc& ctx = rt.register_thread();
  auto map = make_structure(GetParam().structure);
  std::map<std::int64_t, std::int64_t> model;
  util::Xoshiro256 rng(0x0b5e55ed);
  constexpr std::int64_t kRange = 256;
  for (int op = 0; op < 3000; ++op) {
    const auto key = static_cast<std::int64_t>(rng.below(kRange));
    switch (rng.below(5)) {
      case 0: {  // insert
        const bool added = stm::atomically(ctx, [&](stm::Txn& tx) {
          return map->insert(tx, key, fill_value(key));
        });
        EXPECT_EQ(added, model.emplace(key, fill_value(key)).second);
        break;
      }
      case 1: {  // remove
        const bool removed = stm::atomically(
            ctx, [&](stm::Txn& tx) { return map->remove(tx, key); });
        EXPECT_EQ(removed, model.erase(key) != 0);
        break;
      }
      case 2: {  // get
        const auto got = stm::atomically(
            ctx, [&](stm::Txn& tx) { return map->get(tx, key); });
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value());
        } else {
          ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {  // size
        const auto n = stm::atomically(
            ctx, [&](stm::Txn& tx) { return map->size(tx); });
        EXPECT_EQ(n, static_cast<std::int64_t>(model.size()));
        break;
      }
      default: {  // range scan over a short window
        const std::int64_t hi = key + 16;
        std::vector<std::pair<std::int64_t, std::int64_t>> seen;
        stm::atomically(ctx, [&](stm::Txn& tx) {
          seen.clear();
          map->range_scan(tx, key, hi, [&](std::int64_t k, std::int64_t v) {
            seen.emplace_back(k, v);
          });
        });
        std::vector<std::pair<std::int64_t, std::int64_t>> want;
        for (auto it = model.lower_bound(key);
             it != model.end() && it->first < hi; ++it) {
          want.emplace_back(it->first, it->second);
        }
        if (!map->ordered()) {
          std::sort(seen.begin(), seen.end());
        }
        EXPECT_EQ(seen, want);
        break;
      }
    }
  }
  std::string error;
  EXPECT_TRUE(verify_against(*map, model, &error)) << error;
}

// The stress half of the shared suite: 4 threads of mixed ops. Successful
// insert/remove counts must reconcile with the final size (transactions
// lost or doubled by a backend would break the ledger), scans inside a
// transaction must observe a sorted snapshot, and the structure's own
// invariants must hold quiescently.
TEST_P(StructureMatrix, ConcurrentChurnReconcilesCounts) {
  stm::Runtime rt(with_backend(GetParam().backend));
  auto map = make_structure(GetParam().structure);
  constexpr std::int64_t kRange = 512;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 500;
  {
    stm::TxnDesc& ctx = rt.register_thread();
    fill(*map, ctx, 256, kRange, /*seed=*/0xc0ffee);
  }
  const auto initial = static_cast<std::int64_t>(map->unsafe_size());
  std::atomic<std::int64_t> net{0};
  std::atomic<bool> scans_sorted{true};
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(0x57a7e + t);
      std::int64_t local_net = 0;
      barrier.arrive_and_wait();
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto key = static_cast<std::int64_t>(rng.below(kRange));
        switch (rng.below(4)) {
          case 0:
            local_net += stm::atomically(ctx, [&](stm::Txn& tx) {
              return map->insert(tx, key, fill_value(key)) ? 1 : 0;
            });
            break;
          case 1:
            local_net -= stm::atomically(ctx, [&](stm::Txn& tx) {
              return map->remove(tx, key) ? 1 : 0;
            });
            break;
          case 2:
            stm::atomically(ctx,
                            [&](stm::Txn& tx) { (void)map->contains(tx, key); });
            break;
          default: {
            std::int64_t prev = -1;
            bool sorted = true;
            stm::atomically(ctx, [&](stm::Txn& tx) {
              prev = -1;
              sorted = true;
              map->range_scan(tx, key, key + 32,
                              [&](std::int64_t k, std::int64_t) {
                                sorted = sorted && k > prev;
                                prev = k;
                              });
            });
            if (map->ordered() && !sorted) scans_sorted = false;
            break;
          }
        }
      }
      net += local_net;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(scans_sorted.load())
      << "a range scan observed an unsorted snapshot";
  EXPECT_EQ(static_cast<std::int64_t>(map->unsafe_size()), initial + net.load())
      << "successful op ledger does not reconcile with the final size";
  std::string error;
  EXPECT_TRUE(map->check_invariants(&error)) << error;
  bool values_ok = true;
  map->unsafe_for_each([&](std::int64_t k, std::int64_t v) {
    values_ok = values_ok && v == fill_value(k);
  });
  EXPECT_TRUE(values_ok) << "a value diverged from the fill convention";
}

INSTANTIATE_TEST_SUITE_P(AllStructuresAllBackends, StructureMatrix,
                         ::testing::ValuesIn(matrix_params()), matrix_name);

// --- skiplist shape ---

TEST(TSkipList, TowerHeightsAreSeededAndDeterministic) {
  TSkipList a(42);
  TSkipList b(42);
  TSkipList c(43);
  bool differs = false;
  for (std::int64_t k = 0; k < 512; ++k) {
    const int h = a.height_for(k);
    EXPECT_GE(h, 1);
    EXPECT_LE(h, TSkipList::kMaxHeight);
    EXPECT_EQ(h, b.height_for(k)) << "same seed must give the same tower";
    differs = differs || h != c.height_for(k);
  }
  EXPECT_TRUE(differs) << "different seeds should reshape some towers";
}

TEST(TSkipList, InsertRemoveKeepsAllLevelsConsistent) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  TSkipList list(7);
  for (std::int64_t k = 0; k < 400; ++k) {
    const std::int64_t key = (k * 37) % 400;  // permutation of 0..399
    stm::atomically(ctx, [&](stm::Txn& tx) {
      EXPECT_TRUE(list.insert(tx, key, fill_value(key)));
    });
  }
  std::string error;
  ASSERT_TRUE(list.check_invariants(&error)) << error;
  for (std::int64_t key = 0; key < 400; key += 2) {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      EXPECT_TRUE(list.remove(tx, key));
      EXPECT_FALSE(list.remove(tx, key));
    });
  }
  ASSERT_TRUE(list.check_invariants(&error)) << error;
  EXPECT_EQ(list.unsafe_size(), 200u);
}

// --- B+-tree shape ---

TEST(TBTree, AscendingInsertSplitsCleanly) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  TBTree tree;
  constexpr std::int64_t kN = 1000;
  for (std::int64_t k = 0; k < kN; ++k) {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      EXPECT_TRUE(tree.insert(tx, k, fill_value(k)));
      EXPECT_FALSE(tree.insert(tx, k, 0)) << "duplicate insert must refuse";
    });
  }
  std::string error;
  ASSERT_TRUE(tree.check_invariants(&error)) << error;
  EXPECT_EQ(tree.unsafe_size(), static_cast<std::size_t>(kN));
  stm::atomically(ctx, [&](stm::Txn& tx) {
    EXPECT_EQ(tree.size(tx), kN);
    EXPECT_EQ(tree.get(tx, 0), fill_value(0));
    EXPECT_EQ(tree.get(tx, kN - 1), fill_value(kN - 1));
    EXPECT_EQ(tree.get(tx, kN), std::nullopt);
  });
}

TEST(TBTree, LazyDeletionToleratesEmptyLeaves) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  TBTree tree;
  for (std::int64_t k = 0; k < 256; ++k) {
    stm::atomically(ctx,
                    [&](stm::Txn& tx) { tree.insert(tx, k, fill_value(k)); });
  }
  // Drain a whole aligned block so at least one leaf goes empty.
  for (std::int64_t k = 0; k < 64; ++k) {
    stm::atomically(ctx, [&](stm::Txn& tx) { EXPECT_TRUE(tree.remove(tx, k)); });
  }
  std::string error;
  ASSERT_TRUE(tree.check_invariants(&error)) << error;
  EXPECT_EQ(tree.unsafe_size(), 192u);
  // Keys re-insert into the (possibly empty) leaves they map to.
  for (std::int64_t k = 0; k < 64; ++k) {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      EXPECT_TRUE(tree.insert(tx, k, fill_value(k)));
    });
  }
  ASSERT_TRUE(tree.check_invariants(&error)) << error;
  EXPECT_EQ(tree.unsafe_size(), 256u);
}

TEST(TBTree, RangeScanWalksLeafChain) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  TBTree tree;
  for (std::int64_t k = 0; k < 500; k += 5) {
    stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, k, k); });
  }
  std::vector<std::int64_t> keys;
  const std::size_t n = stm::atomically(ctx, [&](stm::Txn& tx) {
    keys.clear();
    return tree.range_scan(tx, 123, 321,
                           [&](std::int64_t k, std::int64_t) {
                             keys.push_back(k);
                           });
  });
  ASSERT_EQ(n, keys.size());
  std::vector<std::int64_t> want;
  for (std::int64_t k = 125; k < 321; k += 5) want.push_back(k);
  EXPECT_EQ(keys, want);
}

// --- TQueue FIFO under concurrency (per backend) ---

// 4 threads (2 producers, 2 consumers) against one queue: every produced
// item is consumed exactly once and each producer's items arrive in
// per-producer FIFO order — transactional enqueue/dequeue may interleave
// producers but must never reorder one producer's stream.
TEST(TQueueConcurrent, FifoPerProducerOnEveryBackend) {
  for (const auto backend : stm::known_backends()) {
    SCOPED_TRACE(std::string(stm::backend_name(backend)));
    stm::Runtime rt(with_backend(backend));
    TQueue<std::int64_t> queue;
    constexpr int kProducers = 2, kConsumers = 2, kPerProducer = 400;
    // Payload pool outlives the queue nodes; values tag (producer, seq).
    std::vector<std::int64_t> payloads(
        static_cast<std::size_t>(kProducers) * kPerProducer);
    for (int p = 0; p < kProducers; ++p) {
      for (int i = 0; i < kPerProducer; ++i) {
        payloads[static_cast<std::size_t>(p) * kPerProducer +
                 static_cast<std::size_t>(i)] = p * 1000000 + i;
      }
    }
    std::atomic<int> consumed{0};
    std::vector<std::vector<std::int64_t>> per_consumer(kConsumers);
    util::SpinBarrier barrier(kProducers + kConsumers);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        stm::TxnDesc& ctx = rt.register_thread();
        barrier.arrive_and_wait();
        for (int i = 0; i < kPerProducer; ++i) {
          auto* item = &payloads[static_cast<std::size_t>(p) * kPerProducer +
                                 static_cast<std::size_t>(i)];
          stm::atomically(ctx,
                          [&](stm::Txn& tx) { queue.enqueue(tx, item); });
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&, c] {
        stm::TxnDesc& ctx = rt.register_thread();
        barrier.arrive_and_wait();
        while (consumed.load() < kProducers * kPerProducer) {
          std::int64_t* item = stm::atomically(
              ctx, [&](stm::Txn& tx) { return queue.try_dequeue(tx); });
          if (item != nullptr) {
            per_consumer[static_cast<std::size_t>(c)].push_back(*item);
            consumed.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(queue.unsafe_size(), 0);
    // Exactly-once: multiset of consumed values == produced values.
    std::vector<std::int64_t> all;
    for (const auto& v : per_consumer) all.insert(all.end(), v.begin(), v.end());
    ASSERT_EQ(all.size(), payloads.size());
    std::vector<std::int64_t> sorted_all = all;
    std::sort(sorted_all.begin(), sorted_all.end());
    std::vector<std::int64_t> sorted_payloads = payloads;
    std::sort(sorted_payloads.begin(), sorted_payloads.end());
    EXPECT_EQ(sorted_all, sorted_payloads);
    // Per-producer FIFO within each consumer's observed stream.
    for (const auto& stream : per_consumer) {
      std::vector<std::int64_t> last(kProducers, -1);
      for (const std::int64_t v : stream) {
        const auto p = static_cast<std::size_t>(v / 1000000);
        const std::int64_t seq = v % 1000000;
        EXPECT_GT(seq, last[p]) << "producer stream reordered";
        last[p] = seq;
      }
    }
  }
}

// --- TList ordering under concurrency (per backend) ---

TEST(TListConcurrent, InterleavedInsertsStaySortedOnEveryBackend) {
  for (const auto backend : stm::known_backends()) {
    SCOPED_TRACE(std::string(stm::backend_name(backend)));
    stm::Runtime rt(with_backend(backend));
    TList list;
    constexpr int kThreads = 4, kPerThread = 250;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        stm::TxnDesc& ctx = rt.register_thread();
        barrier.arrive_and_wait();
        // Thread t owns keys ≡ t (mod kThreads): disjoint but interleaved,
        // so every insert races on neighbouring links.
        for (int i = 0; i < kPerThread; ++i) {
          const std::int64_t key = static_cast<std::int64_t>(i) * kThreads + t;
          stm::atomically(ctx, [&](stm::Txn& tx) {
            EXPECT_TRUE(list.insert(tx, key, fill_value(key)));
          });
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string error;
    EXPECT_TRUE(list.check_invariants(&error)) << error;
    std::vector<std::int64_t> keys;
    list.unsafe_for_each(
        [&](std::int64_t k, std::int64_t) { keys.push_back(k); });
    ASSERT_EQ(keys.size(), static_cast<std::size_t>(kThreads * kPerThread));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(keys[i], static_cast<std::int64_t>(i)) << "dense sorted keys";
    }
  }
}

TEST(TListConcurrent, ChurnReconcilesCountsOnEveryBackend) {
  for (const auto backend : stm::known_backends()) {
    SCOPED_TRACE(std::string(stm::backend_name(backend)));
    stm::Runtime rt(with_backend(backend));
    TList list;
    constexpr std::int64_t kRange = 128;
    constexpr int kThreads = 4;
    std::atomic<std::int64_t> net{0};
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        stm::TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(0x11f0 + t);
        std::int64_t local = 0;
        barrier.arrive_and_wait();
        for (int op = 0; op < 400; ++op) {
          const auto key = static_cast<std::int64_t>(rng.below(kRange));
          if (rng.below(2) == 0) {
            local += stm::atomically(ctx, [&](stm::Txn& tx) {
              return list.insert(tx, key, fill_value(key)) ? 1 : 0;
            });
          } else {
            local -= stm::atomically(ctx, [&](stm::Txn& tx) {
              return list.erase(tx, key) ? 1 : 0;
            });
          }
        }
        net += local;
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(static_cast<std::int64_t>(list.unsafe_size()), net.load());
    std::string error;
    EXPECT_TRUE(list.check_invariants(&error)) << error;
  }
}

}  // namespace
}  // namespace rubic::tds

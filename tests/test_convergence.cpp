// Convergence property tests: the dynamic behaviours the paper's figures
// claim, asserted over the simulator. These are the "shape" guarantees the
// benches then render as full traces (Fig. 2, 3, 5, 10).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/control/aimd.hpp"
#include "src/control/ebs.hpp"
#include "src/control/f2c2.hpp"
#include "src/control/rubic.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/stats.hpp"

namespace rubic::sim {
namespace {

constexpr control::LevelBounds kPool{1, 128};

double tail_mean_level(const SimProcessResult& process, double from_s) {
  double sum = 0;
  int count = 0;
  for (const auto& point : process.trace) {
    if (point.time_s >= from_s) {
      sum += point.level;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

SimResult run_single_controller(control::Controller& controller,
                                const WorkloadProfile& profile,
                                double duration_s, std::uint64_t seed = 1,
                                double noise_sigma = 0.005) {
  SimProcessSpec spec{"p", profile, &controller, 0.0,
                      std::numeric_limits<double>::infinity()};
  SimConfig config;
  config.duration_s = duration_s;
  config.seed = seed;
  config.noise_sigma = noise_sigma;
  return run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
}

// ---------- Fig. 3: AIMD leaves ~25% of the machine idle ----------

// Fig. 3 and Fig. 5 are the paper's *idealized* single-process diagrams
// ("the expected behavior of a model"): losses occur only at the
// oversubscription point, so these runs use zero measurement noise.

TEST(Convergence, AimdSteadyStateAveragesThreeQuarters) {
  control::AimdController aimd(kPool, 0.5);
  const SimResult result =
      run_single_controller(aimd, rbt_readonly_profile(), 30.0, 1, 0.0);
  // Discard the additive ramp from level 1; average the sawtooth regime.
  const double steady = tail_mean_level(result.processes[0], 10.0);
  EXPECT_GT(steady, 42.0) << "sawtooth should span roughly [32, 64]";
  EXPECT_LT(steady, 54.0) << "paper Fig. 3: average ≈ 48 (75% utilization)";
}

// ---------- Fig. 5: CIMD utilizes ~94% ----------

TEST(Convergence, CimdSteadyStateNearMachineSize) {
  control::RubicController rubic(
      kPool, control::CubicParams{0.5, 0.1, control::CubicMode::kTcpConsistent});
  const SimResult result =
      run_single_controller(rubic, rbt_readonly_profile(), 30.0, 1, 0.0);
  const double steady = tail_mean_level(result.processes[0], 10.0);
  EXPECT_GT(steady, 54.0) << "paper Fig. 5: average ≈ 60 (94% utilization)";
  EXPECT_LT(steady, 68.0);
}

TEST(Convergence, CimdBeatsAimdUtilization) {
  control::AimdController aimd(kPool, 0.5);
  control::RubicController cimd(
      kPool, control::CubicParams{0.5, 0.1, control::CubicMode::kTcpConsistent});
  const double aimd_steady =
      tail_mean_level(run_single_controller(aimd, rbt_readonly_profile(), 30.0,
                                            1, 0.0)
                          .processes[0],
                      10.0);
  const double cimd_steady =
      tail_mean_level(run_single_controller(cimd, rbt_readonly_profile(), 30.0,
                                            1, 0.0)
                          .processes[0],
                      10.0);
  EXPECT_GT(cimd_steady, aimd_steady + 5.0)
      << "§2.2: cubic growth must recover utilization lost to MD";
}

// ---------- Fig. 10c: RUBIC's staggered-arrival fairness ----------

TEST(Convergence, RubicPairConvergesToEqualSplit) {
  control::RubicController c1(kPool), c2(kPool);
  SimProcessSpec specs[2] = {
      {"p1", rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", rbt_readonly_profile(), &c2, 5.0,
       std::numeric_limits<double>::infinity()},
  };
  SimConfig config;
  config.duration_s = 10.0;
  const SimResult result = run_simulation(config, specs);

  // Before P2 arrives, P1 should be oscillating around the machine size.
  const auto& p1 = result.processes[0];
  double pre_arrival_sum = 0;
  int pre_count = 0;
  for (const auto& point : p1.trace) {
    if (point.time_s >= 2.0 && point.time_s < 5.0) {
      pre_arrival_sum += point.level;
      ++pre_count;
    }
  }
  const double p1_before = pre_arrival_sum / pre_count;
  EXPECT_GT(p1_before, 52.0) << "P1 alone must fill the 64-context machine";
  EXPECT_LT(p1_before, 72.0);

  // After convergence both oscillate around the fair 32/32 allocation.
  const double p1_after = tail_mean_level(p1, 8.0);
  const double p2_after = tail_mean_level(result.processes[1], 8.0);
  EXPECT_NEAR(p1_after, 32.0, 10.0);
  EXPECT_NEAR(p2_after, 32.0, 10.0);
  // Fair: neither starves the other, total stays near (not far above) the
  // oversubscription line.
  EXPECT_LT(std::abs(p1_after - p2_after), 14.0);
  EXPECT_LT(p1_after + p2_after, 76.0);
  EXPECT_GT(p1_after + p2_after, 48.0);
}

TEST(Convergence, RubicConvergesFromBothArrivalOrders) {
  // Determinism sweep across seeds: the fair split must not depend on the
  // noise stream (property-style check over repetitions).
  for (std::uint64_t seed : {7ull, 42ull, 1234ull, 987654ull}) {
    control::RubicController c1(kPool), c2(kPool);
    SimProcessSpec specs[2] = {
        {"p1", rbt_readonly_profile(), &c1, 0.0,
         std::numeric_limits<double>::infinity()},
        {"p2", rbt_readonly_profile(), &c2, 5.0,
         std::numeric_limits<double>::infinity()},
    };
    SimConfig config;
    config.duration_s = 10.0;
    config.seed = seed;
    const SimResult result = run_simulation(config, specs);
    const double p1_after = tail_mean_level(result.processes[0], 8.5);
    const double p2_after = tail_mean_level(result.processes[1], 8.5);
    EXPECT_NEAR(p1_after, 32.0, 12.0) << "seed " << seed;
    EXPECT_NEAR(p2_after, 32.0, 12.0) << "seed " << seed;
  }
}

// ---------- Fig. 10a/b: the baselines fail the same scenario ----------

TEST(Convergence, EbsPairDoesNotConvergeToFairSplit) {
  control::EbsController c1(kPool), c2(kPool);
  SimProcessSpec specs[2] = {
      {"p1", rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", rbt_readonly_profile(), &c2, 5.0,
       std::numeric_limits<double>::infinity()},
  };
  SimConfig config;
  config.duration_s = 10.0;
  const SimResult result = run_simulation(config, specs);
  const double p1_after = tail_mean_level(result.processes[0], 8.0);
  const double p2_after = tail_mean_level(result.processes[1], 8.0);
  // Paper: "both processes behave rather randomly and they do not converge
  // to the optimal allocation" — the race settles oversubscribed, well
  // above the fair-and-efficient 32/32 state RUBIC reaches.
  EXPECT_GT(p1_after + p2_after, 70.0)
      << "EBS pair must stay oversubscribed, got " << p1_after << " + "
      << p2_after;
}

TEST(Convergence, F2c2PairOversubscribesAndStaysHigh) {
  control::F2c2Controller c1(kPool), c2(kPool);
  SimProcessSpec specs[2] = {
      {"p1", rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", rbt_readonly_profile(), &c2, 5.0,
       std::numeric_limits<double>::infinity()},
  };
  SimConfig config;
  config.duration_s = 10.0;
  const SimResult result = run_simulation(config, specs);
  const double total_after = tail_mean_level(result.processes[0], 8.0) +
                             tail_mean_level(result.processes[1], 8.0);
  EXPECT_GT(total_after, 72.0)
      << "paper Fig. 10a: F2C2 processes race and oversubscribe";
}

TEST(Convergence, RubicKeepsTotalBelowLineAcrossPairs) {
  // Fig. 7b's headline: only RUBIC keeps the total near/below 64 on every
  // workload pair (steady state).
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  for (const auto& pair : pairs) {
    control::RubicController c1(kPool), c2(kPool);
    SimProcessSpec specs[2] = {
        {pair[0], profile_by_name(pair[0]), &c1, 0.0,
         std::numeric_limits<double>::infinity()},
        {pair[1], profile_by_name(pair[1]), &c2, 0.0,
         std::numeric_limits<double>::infinity()},
    };
    SimConfig config;
    config.duration_s = 10.0;
    const SimResult result = run_simulation(config, specs);
    const double total = tail_mean_level(result.processes[0], 6.0) +
                         tail_mean_level(result.processes[1], 6.0);
    EXPECT_LT(total, 70.0) << pair[0] << "/" << pair[1];
  }
}

// ---------- dynamic workload change (§3.3 motivation (ii)) ----------

TEST(Convergence, RubicReconvergesAfterWorkloadShrink) {
  // Highly scalable workload degenerates into Intruder-like at t = 5 s; the
  // controller must shed ~50 threads from throughput feedback alone.
  control::RubicController rubic(kPool);
  SimProcessSpec spec{"p", rbt98_profile(), &rubic, 0.0,
                      std::numeric_limits<double>::infinity()};
  spec.change_s = 5.0;
  spec.profile_after = intruder_profile();
  SimConfig config;
  config.duration_s = 10.0;
  const SimResult result =
      run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
  const double settled = tail_mean_level(result.processes[0], 8.0);
  EXPECT_NEAR(settled, 7.0, 3.0) << "must find the new (Intruder) peak";
}

TEST(Convergence, RubicReconvergesAfterWorkloadGrowth) {
  control::RubicController rubic(kPool);
  SimProcessSpec spec{"p", intruder_profile(), &rubic, 0.0,
                      std::numeric_limits<double>::infinity()};
  spec.change_s = 5.0;
  spec.profile_after = rbt98_profile();
  SimConfig config;
  config.duration_s = 10.0;
  const SimResult result =
      run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
  const double settled = tail_mean_level(result.processes[0], 9.0);
  EXPECT_GT(settled, 40.0) << "must re-probe up toward the new capacity";
}

// ---------- monitor starvation (§3.1's priority rationale) ----------

TEST(Convergence, RubicToleratesAStarvedMonitor) {
  // Even when the monitor loses 50% of its oversubscribed rounds (no
  // priority raise), RUBIC still converges to the fair split after an
  // arrival — the MD steps are large enough that halved feedback only
  // slows convergence, it does not break it.
  control::RubicController c1(kPool), c2(kPool);
  SimProcessSpec specs[2] = {
      {"p1", rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", rbt_readonly_profile(), &c2, 5.0,
       std::numeric_limits<double>::infinity()},
  };
  SimConfig config;
  config.duration_s = 10.0;
  config.monitor_drop_prob = 0.5;
  const SimResult result = run_simulation(config, specs);
  const double p1_after = tail_mean_level(result.processes[0], 8.5);
  const double p2_after = tail_mean_level(result.processes[1], 8.5);
  EXPECT_NEAR(p1_after, 32.0, 14.0);
  EXPECT_NEAR(p2_after, 32.0, 14.0);
  EXPECT_LT(p1_after + p2_after, 80.0);
}

TEST(Convergence, StarvationOnlyAppliesWhileOversubscribed) {
  // Below the line the monitor always runs; a lone process's cold start
  // must be identical with and without the drop probability.
  for (const double drop : {0.0, 0.9}) {
    control::RubicController c(kPool);
    SimProcessSpec spec{"p", rbt_readonly_profile(), &c, 0.0,
                        std::numeric_limits<double>::infinity()};
    SimConfig config;
    config.duration_s = 0.5;
    config.monitor_drop_prob = drop;
    const SimResult result =
        run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
    EXPECT_GT(tail_mean_level(result.processes[0], 0.3), 50.0)
        << "drop=" << drop;
  }
}

// ---------- single-process sanity (Fig. 9 shape) ----------

TEST(Convergence, RubicFindsIntruderPeak) {
  control::RubicController rubic(kPool);
  const SimResult result =
      run_single_controller(rubic, intruder_profile(), 10.0);
  const double steady = tail_mean_level(result.processes[0], 5.0);
  EXPECT_NEAR(steady, 7.0, 3.0)
      << "RUBIC must settle at Intruder's scalability peak";
  // And capture most of the achievable speed-up.
  EXPECT_GT(result.processes[0].speedup,
            0.8 * intruder_profile().curve->peak_speedup(64));
}

TEST(Convergence, RubicIsMoreStableThanEbsAcrossSeeds) {
  // Fig. 9c: RUBIC has the lowest allocation std-dev across repetitions.
  util::Welford rubic_levels, ebs_levels;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    control::RubicController rubic(kPool);
    control::EbsController ebs(kPool);
    rubic_levels.add(tail_mean_level(
        run_single_controller(rubic, vacation_profile(), 10.0, seed)
            .processes[0],
        5.0));
    ebs_levels.add(tail_mean_level(
        run_single_controller(ebs, vacation_profile(), 10.0, seed)
            .processes[0],
        5.0));
  }
  EXPECT_LT(rubic_levels.stddev(), ebs_levels.stddev())
      << "RUBIC's allocation must be the more repeatable one";
}

}  // namespace
}  // namespace rubic::sim

// Simulator tests: curve shapes match the paper's fit targets, the machine
// model exhibits the properties the controllers depend on, the simulation
// loop accounts correctly, and the repetition harness is deterministic.
#include <gtest/gtest.h>

#include <memory>

#include "src/control/ebs.hpp"
#include "src/control/fixed.hpp"
#include "src/control/rubic.hpp"
#include "src/sim/experiment.hpp"
#include "src/sim/machine_model.hpp"
#include "src/sim/sim_system.hpp"
#include "src/sim/workload_profiles.hpp"

namespace rubic::sim {
namespace {

// ---------- scalability curves ----------

TEST(Curves, SpeedupOfOneIsOne) {
  for (const char* name : {"intruder", "vacation", "rbt", "rbt-readonly"}) {
    EXPECT_NEAR(profile_by_name(name).curve->speedup(1.0), 1.0, 1e-12) << name;
  }
}

TEST(Curves, MonotoneUpToPeakThenDeclining) {
  // The paper's only requirement on workloads (§4.4): the scalability graph
  // must monotonically increase until its peak.
  for (const char* name : {"intruder", "vacation", "rbt", "rbt-readonly"}) {
    const auto profile = profile_by_name(name);
    const int peak = profile.curve->peak_level(64);
    for (int level = 2; level <= peak; ++level) {
      EXPECT_GT(profile.curve->speedup(level),
                profile.curve->speedup(level - 1))
          << name << " at " << level;
    }
    for (int level = peak + 1; level <= 64; ++level) {
      EXPECT_LE(profile.curve->speedup(level),
                profile.curve->speedup(level - 1))
          << name << " at " << level;
    }
  }
}

TEST(Curves, IntruderMatchesFig1) {
  const auto profile = intruder_profile();
  const int peak = profile.curve->peak_level(64);
  EXPECT_GE(peak, 6);
  EXPECT_LE(peak, 8) << "paper: Intruder peaks at 7 threads";
  EXPECT_LT(profile.curve->speedup(64.0), 0.55)
      << "paper: at 64 threads, under half the sequential throughput";
  EXPECT_GT(profile.curve->speedup(peak), 3.0);
}

TEST(Curves, VacationPeaksMidRange) {
  const auto profile = vacation_profile();
  const int peak = profile.curve->peak_level(64);
  EXPECT_GE(peak, 30) << "§4.5.1: Vacation scales up to ~32 threads";
  EXPECT_LE(peak, 42);
  // Decline after the peak is gentle, unlike Intruder's collapse.
  EXPECT_GT(profile.curve->speedup(64.0),
            0.85 * profile.curve->speedup(peak));
}

TEST(Curves, Rbt98NearMachineSize) {
  const auto profile = rbt98_profile();
  const int peak = profile.curve->peak_level(64);
  EXPECT_GE(peak, 48) << "paper: RBT scales close to the machine size";
}

TEST(Curves, ReadOnlyRbtScalesToMachineSize) {
  const auto profile = rbt_readonly_profile();
  EXPECT_EQ(profile.curve->peak_level(64), 64)
      << "§4.6: conflict-free RBT scales up to the number of h/w contexts";
  EXPECT_GT(profile.curve->speedup(64.0), 50.0);
}

TEST(Curves, TableCurveInterpolates) {
  TableCurve curve({{1.0, 1.0}, {8.0, 6.0}, {16.0, 4.0}});
  EXPECT_DOUBLE_EQ(curve.speedup(1.0), 1.0);
  EXPECT_DOUBLE_EQ(curve.speedup(8.0), 6.0);
  EXPECT_NEAR(curve.speedup(4.5), 3.5, 1e-12);
  EXPECT_NEAR(curve.speedup(12.0), 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve.speedup(100.0), 4.0) << "clamped past last sample";
  EXPECT_NEAR(curve.speedup(0.5), 0.5, 1e-12) << "scales to S(0)=0 below 1";
}

TEST(Curves, ProfileLookupThrowsOnUnknown) {
  EXPECT_THROW(profile_by_name("nonsense"), std::invalid_argument);
}

// ---------- machine model ----------

TEST(MachineModelTest, DedicatedMatchesCurve) {
  MachineModel machine(64);
  const auto profile = rbt98_profile();
  for (int level : {1, 8, 32, 64}) {
    EXPECT_DOUBLE_EQ(machine.throughput(profile, level, level),
                     profile.sequential_rate * profile.curve->speedup(level));
  }
}

TEST(MachineModelTest, CrossingOversubscriptionLineDegrades) {
  MachineModel machine(64);
  const auto profile = rbt_readonly_profile();
  // One process at 64 on a full machine vs. the same process when the
  // system has 2 extra threads: its throughput must strictly drop.
  const double at_line = machine.throughput(profile, 64, 64);
  const double just_over = machine.throughput(profile, 64, 66);
  EXPECT_LT(just_over, at_line);
  // ...but only slightly: the plateau that hides from ±1 AIAD probes.
  EXPECT_GT(just_over, 0.93 * at_line);
}

TEST(MachineModelTest, GrowingOwnShareWhileOversubscribedPays) {
  // §2.1's race dynamics: when the system is oversubscribed, adding own
  // threads steals timeslice share (small personal gain), while unilateral
  // reduction is punished — so greedy ±1 policies never de-escalate.
  MachineModel machine(64);
  const auto profile = rbt_readonly_profile();
  const double both_64 = machine.throughput(profile, 64, 128);
  const double me_65 = machine.throughput(profile, 65, 129);
  EXPECT_GT(me_65, both_64) << "growing while oversubscribed must pay off";
  const double me_32_peer_64 = machine.throughput(profile, 32, 96);
  EXPECT_LT(me_32_peer_64, both_64)
      << "unilateral de-escalation must be punished";
}

TEST(MachineModelTest, FairSplitBeatsOversubscribedRace) {
  // The cooperative optimum the MD phases unlock: both at 32 beats both at
  // 64 — individually and in NSBP product.
  MachineModel machine(64);
  const auto profile = rbt_readonly_profile();
  const double fair = machine.throughput(profile, 32, 64);
  const double race = machine.throughput(profile, 64, 128);
  EXPECT_GT(fair, 1.3 * race);
}

TEST(MachineModelTest, IntruderSuffersMostFromOversubscription) {
  // Beyond losing timeslice share (already reflected in the effective
  // level), a TM-heavy workload pays an extra convex penalty — preempted
  // lock holders prolong transactions and inflate conflicts (§1). Extract
  // that factor at 2× load and compare across workloads.
  MachineModel machine(64);
  auto extra_penalty = [&](const WorkloadProfile& profile) {
    const double effective = profile.curve->speedup(32.0);  // 64·C/2C
    return machine.throughput(profile, 64, 128) /
           (profile.sequential_rate * effective);
  };
  const double intruder_phi = extra_penalty(intruder_profile());
  const double vacation_phi = extra_penalty(vacation_profile());
  const double rbt_phi = extra_penalty(rbt_readonly_profile());
  EXPECT_LT(intruder_phi, vacation_phi);
  EXPECT_LT(vacation_phi, rbt_phi);
  EXPECT_LT(rbt_phi, 1.0) << "oversubscription always costs something";
}

TEST(MachineModelTest, ZeroLevelZeroThroughput) {
  MachineModel machine(64);
  EXPECT_EQ(machine.throughput(rbt98_profile(), 0, 10), 0.0);
}

// ---------- simulation loop ----------

TEST(SimSystem, FixedControllerAccountsExactly) {
  control::FixedController fixed(control::LevelBounds{1, 64}, 16, "Fixed");
  SimProcessSpec spec;
  spec.name = "p0";
  spec.profile = rbt98_profile();
  spec.controller = &fixed;
  SimConfig config;
  config.duration_s = 1.0;
  config.noise_sigma = 0.0;
  const SimResult result =
      run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
  ASSERT_EQ(result.processes.size(), 1u);
  const auto& p = result.processes[0];
  EXPECT_NEAR(p.mean_level, 16.0, 1e-9);
  EXPECT_NEAR(p.speedup, spec.profile.curve->speedup(16.0), 1e-9);
  EXPECT_NEAR(p.active_seconds, 1.0, 1e-9);
  EXPECT_NEAR(p.tasks_completed,
              spec.profile.sequential_rate * p.speedup * 1.0,
              spec.profile.sequential_rate * 1e-9);
  EXPECT_NEAR(result.nsbp, p.speedup, 1e-12);
  EXPECT_NEAR(result.total_mean_threads, 16.0, 1e-9);
}

TEST(SimSystem, TraceCoversEveryRound) {
  control::FixedController fixed(control::LevelBounds{1, 64}, 4, "Fixed");
  SimProcessSpec spec;
  spec.name = "p0";
  spec.profile = vacation_profile();
  spec.controller = &fixed;
  SimConfig config;
  config.duration_s = 0.5;
  config.period_s = 0.01;
  const SimResult result =
      run_simulation(config, std::span<SimProcessSpec>(&spec, 1));
  EXPECT_EQ(result.processes[0].trace.size(), 50u);
  EXPECT_DOUBLE_EQ(result.processes[0].trace.front().time_s, 0.0);
}

TEST(SimSystem, LateArrivalOnlyAccountsWhileActive) {
  control::FixedController f1(control::LevelBounds{1, 64}, 8, "Fixed");
  control::FixedController f2(control::LevelBounds{1, 64}, 8, "Fixed");
  SimProcessSpec specs[2];
  specs[0] = {"early", rbt98_profile(), &f1, 0.0,
              std::numeric_limits<double>::infinity()};
  specs[1] = {"late", rbt98_profile(), &f2, 0.5,
              std::numeric_limits<double>::infinity()};
  SimConfig config;
  config.duration_s = 1.0;
  config.noise_sigma = 0.0;
  const SimResult result = run_simulation(config, specs);
  EXPECT_NEAR(result.processes[0].active_seconds, 1.0, 1e-9);
  EXPECT_NEAR(result.processes[1].active_seconds, 0.5, 1e-9);
}

TEST(SimSystem, DepartureFreesTheMachine) {
  control::FixedController f1(control::LevelBounds{1, 128}, 64, "Fixed");
  control::FixedController f2(control::LevelBounds{1, 128}, 64, "Fixed");
  SimProcessSpec specs[2];
  specs[0] = {"stays", rbt_readonly_profile(), &f1, 0.0,
              std::numeric_limits<double>::infinity()};
  specs[1] = {"leaves", rbt_readonly_profile(), &f2, 0.0, 0.5};
  SimConfig config;
  config.duration_s = 1.0;
  config.noise_sigma = 0.0;
  const SimResult result = run_simulation(config, specs);
  const auto& stays = result.processes[0].trace;
  ASSERT_EQ(stays.size(), 100u);
  // While both run: oversubscribed 128 on 64. After departure: dedicated.
  EXPECT_LT(stays[10].throughput, stays[80].throughput);
  EXPECT_NEAR(result.processes[1].active_seconds, 0.5, 1e-9);
}

TEST(SimSystem, EqualShareAllocatorTracksArrivals) {
  auto allocator = std::make_shared<control::CentralAllocator>(64);
  control::EqualShareController c1(allocator), c2(allocator);
  SimProcessSpec specs[2];
  specs[0] = {"p1", rbt_readonly_profile(), &c1, 0.0,
              std::numeric_limits<double>::infinity()};
  specs[1] = {"p2", rbt_readonly_profile(), &c2, 0.5,
              std::numeric_limits<double>::infinity()};
  SimConfig config;
  config.duration_s = 1.0;
  config.noise_sigma = 0.0;
  config.allocator = allocator;
  const SimResult result = run_simulation(config, specs);
  const auto& trace = result.processes[0].trace;
  // Before arrival p1 holds all 64 contexts; after, the share drops to 32.
  EXPECT_EQ(trace[20].level, 64);
  EXPECT_EQ(trace[80].level, 32);
}

// ---------- experiment harness ----------

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.repetitions = 3;
  config.duration_s = 1.0;
  const auto a = run_pair(config, "rubic", "rbt", "vacation");
  const auto b = run_pair(config, "rubic", "rbt", "vacation");
  EXPECT_DOUBLE_EQ(a.nsbp.mean(), b.nsbp.mean());
  EXPECT_DOUBLE_EQ(a.nsbp.stddev(), b.nsbp.stddev());
  EXPECT_DOUBLE_EQ(a.processes[0].mean_level.mean(),
                   b.processes[0].mean_level.mean());
}

TEST(Experiment, SeedChangesResults) {
  ExperimentConfig config;
  config.repetitions = 2;
  config.duration_s = 1.0;
  auto a = run_pair(config, "ebs", "rbt", "vacation");
  config.base_seed += 1000;
  auto b = run_pair(config, "ebs", "rbt", "vacation");
  EXPECT_NE(a.nsbp.mean(), b.nsbp.mean());
}

TEST(Experiment, AllPoliciesRunPairwise) {
  ExperimentConfig config;
  config.repetitions = 2;
  config.duration_s = 0.5;
  for (const auto policy : control::evaluated_policies()) {
    const auto result = run_pair(config, std::string(policy), "intruder", "rbt");
    EXPECT_GT(result.nsbp.mean(), 0.0) << policy;
    EXPECT_EQ(result.processes.size(), 2u) << policy;
  }
}

}  // namespace
}  // namespace rubic::sim

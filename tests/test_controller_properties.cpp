// Property tests over every controller: under arbitrary (fuzzed) throughput
// sequences, levels must stay within bounds, never be NaN-poisoned, and
// honour each policy's step-size contract. Parameterized across policies
// and fuzz seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/control/contention.hpp"
#include "src/control/factory.hpp"
#include "src/control/rubic.hpp"
#include "src/util/rng.hpp"

namespace rubic::control {
namespace {

struct FuzzParam {
  std::string policy;
  std::uint64_t seed;
};

class ControllerFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(ControllerFuzz, LevelsAlwaysWithinBoundsUnderArbitraryFeedback) {
  const auto& [policy, seed] = GetParam();
  PolicyConfig config;
  config.contexts = 64;
  config.allocator = std::make_shared<CentralAllocator>(64);
  config.allocator->register_process();
  auto controller = make_controller(policy, config);
  util::Xoshiro256 rng(seed);

  int level = controller->initial_level();
  EXPECT_GE(level, 1);
  EXPECT_LE(level, config.effective_pool());
  for (int round = 0; round < 5000; ++round) {
    // Adversarial feedback: spikes, zeros, plateaus, slow drifts.
    double throughput;
    switch (rng.below(5)) {
      case 0: throughput = 0.0; break;
      case 1: throughput = 1e12 * rng.uniform(); break;
      case 2: throughput = 100.0; break;  // plateau
      case 3: throughput = rng.uniform(); break;
      default: throughput = 1e6 * (1.0 + 0.3 * rng.normal()); break;
    }
    if (throughput < 0) throughput = 0;
    const int next = controller->on_sample(throughput);
    EXPECT_GE(next, 1) << policy << " round " << round;
    EXPECT_LE(next, config.effective_pool()) << policy << " round " << round;
    level = next;
  }
  // reset() must restore a usable state.
  controller->reset();
  EXPECT_GE(controller->on_sample(1.0), 1);
}

TEST_P(ControllerFuzz, ResetMakesRunsReproducible) {
  const auto& [policy, seed] = GetParam();
  PolicyConfig config;
  config.contexts = 64;
  config.allocator = std::make_shared<CentralAllocator>(64);
  config.allocator->register_process();
  auto controller = make_controller(policy, config);

  auto run_once = [&] {
    std::vector<int> levels;
    util::Xoshiro256 rng(seed ^ 0xfeed);
    for (int round = 0; round < 500; ++round) {
      levels.push_back(controller->on_sample(1e6 * rng.uniform()));
    }
    return levels;
  };
  const auto first = run_once();
  controller->reset();
  const auto second = run_once();
  EXPECT_EQ(first, second) << policy << " is stateful across reset()";
}

std::vector<FuzzParam> fuzz_matrix() {
  std::vector<FuzzParam> params;
  for (const char* policy :
       {"rubic", "ebs", "aiad", "f2c2", "aimd", "greedy", "equalshare"}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      params.push_back({policy, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ControllerFuzz, ::testing::ValuesIn(fuzz_matrix()),
    [](const auto& param_info) {
      return param_info.param.policy + "_seed" +
             std::to_string(param_info.param.seed);
    });

// RUBIC-specific structural properties under fuzz.

TEST(RubicProperties, StepContractUnderFuzz) {
  RubicController c(LevelBounds{1, 128});
  util::Xoshiro256 rng(99);
  int level = c.initial_level();
  double previous_sample = 0.0;
  for (int round = 0; round < 5000; ++round) {
    const double throughput = 1e6 * rng.uniform();
    const bool improvement = throughput >= previous_sample;
    const auto phase_before = c.growth_phase();
    const auto reduction_before = c.reduction_phase();
    const int next = c.on_sample(throughput);
    if (next < level) {
      // Decreases are exactly −2 (linear) or to ~αL (multiplicative),
      // modulo the level-1 clamp.
      const bool linear_step = next == std::max(1, level - 2);
      const bool md_step =
          next == std::max<int>(1, static_cast<int>(std::llround(
                                       c.params().alpha * level)));
      EXPECT_TRUE(linear_step || md_step)
          << "round " << round << ": " << level << " -> " << next;
    }
    (void)improvement;
    (void)phase_before;
    (void)reduction_before;
    level = next;
    // The controller nulls T_p after reductions, so track our own view
    // only loosely (we cannot observe T_p directly).
    previous_sample = throughput;
  }
  // dt_max is only non-zero while growing.
  EXPECT_GE(c.dt_max(), 0.0);
}

TEST(RubicProperties, LmaxOnlyMovesOnMultiplicativeDecrease) {
  RubicController c(LevelBounds{1, 128});
  util::Xoshiro256 rng(7);
  double l_max = c.l_max();
  for (int round = 0; round < 3000; ++round) {
    const auto reduction_before = c.reduction_phase();
    const int level_before = c.level();
    c.on_sample(1e6 * rng.uniform());
    if (c.l_max() != l_max) {
      EXPECT_EQ(reduction_before,
                RubicController::ReductionPhase::kMultiplicative)
          << "L_max changed outside an armed MD, round " << round;
      EXPECT_DOUBLE_EQ(c.l_max(), level_before)
          << "line 27: L_max records the level where the loss was seen";
      l_max = c.l_max();
    }
  }
}

}  // namespace
}  // namespace rubic::control

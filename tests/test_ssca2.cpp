// SSCA2 graph-construction workload tests: exact epoch-0 ground truth
// (unique edge count and full degree sequence), handshake-lemma invariant
// under concurrency and replays, hub-skew sanity.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/workloads/ssca2/graph_workload.hpp"

namespace rubic::workloads::ssca2 {
namespace {

using namespace std::chrono_literals;

GraphParams tiny() {
  GraphParams params;
  params.vertex_count = 128;
  params.edge_count = 1024;
  return params;
}

TEST(Ssca2, SingleThreadEpochMatchesDegreeSequence) {
  stm::Runtime rt;
  GraphWorkload workload(rt, tiny());
  ASSERT_GT(workload.unique_edges_expected(), 0);
  ASSERT_LT(workload.unique_edges_expected(), 1024)
      << "skewed sampling must produce duplicate edges";
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Ssca2, ReplayEpochsKeepHandshakeInvariant) {
  stm::Runtime rt;
  GraphWorkload workload(rt, tiny());
  stm::TxnDesc& ctx = rt.register_thread();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 2 * 1024 + 512; ++i) workload.run_task(ctx, rng);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(Ssca2, ConcurrentInsertersCountExactly) {
  stm::Runtime rt;
  GraphWorkload workload(rt, tiny());
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(3);
      barrier.arrive_and_wait();
      for (int i = 0; i < 1024 / kThreads; ++i) workload.run_task(ctx, rng);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(workload.edges_processed(), 1024);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error
      << " (hot hub counters are the contention point here)";
}

TEST(Ssca2, UnderTunedProcess) {
  stm::Runtime rt;
  GraphWorkload workload(rt, tiny());
  control::RubicController controller(control::LevelBounds{1, 4});
  runtime::ProcessConfig config;
  config.pool.pool_size = 4;
  config.monitor.period = 5ms;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(250ms);
  EXPECT_GT(report.tasks_completed, 500u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::workloads::ssca2

// Traffic subsystem suite (src/traffic/): key-distribution statistics,
// rate-curve parsing, arrival-schedule determinism, open-loop backlog
// behaviour under an injected stall, the KV service workload end-to-end on
// the malleable runtime, and — the part that makes the rest trustworthy —
// proof that the exit-time verifier actually catches tampered state.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/control/factory.hpp"
#include "src/control/fixed.hpp"
#include "src/fault/fault.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/traffic/traffic.hpp"
#include "src/util/listing.hpp"
#include "src/util/rng.hpp"

namespace rubic {
namespace {

using std::chrono::milliseconds;

// Chaos tests must leave the process disarmed even when an assertion fails
// mid-body (gtest keeps running the remaining tests in this process).
class TrafficChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

// --- key distributions -----------------------------------------------------

TEST(KeyDist, ZipfianHeadKeyFrequencyMatchesTheory) {
  constexpr std::uint64_t kN = 1000;
  constexpr int kSamples = 200000;
  traffic::ZipfianSampler sampler(kN, 0.99);
  util::Xoshiro256 rng(42);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t rank = sampler.sample(rng);
    ASSERT_LT(rank, kN);
    ++counts[rank];
  }
  // The hottest rank's empirical frequency must track 1/zeta(n, theta)
  // within 15% — the YCSB inversion is exact, so the slack is only
  // sampling noise at 200k draws.
  const double head = static_cast<double>(counts[0]) / kSamples;
  const double expected = sampler.head_probability();
  EXPECT_NEAR(head, expected, 0.15 * expected);
  // Skew sanity: the head outdraws rank 10 and rank 100 by a wide margin.
  EXPECT_GT(counts[0], 4 * counts[10]);
  EXPECT_GT(counts[0], 20 * counts[100]);
}

TEST(KeyDist, UniformChiSquaredWithinBound) {
  constexpr std::uint64_t kN = 64;
  constexpr int kSamples = 128000;
  traffic::UniformSampler sampler(kN);
  util::Xoshiro256 rng(7);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.sample(rng)];
  const double expected = static_cast<double>(kSamples) / kN;
  double chi2 = 0.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 63 degrees of freedom: P(chi2 > 120) < 1e-5. A biased generator (or a
  // broken below()) lands far above this.
  EXPECT_LT(chi2, 120.0);
}

TEST(KeyDist, ZipfianRejectsBadTheta) {
  // RUBIC_CHECK aborts rather than throwing (see src/util/check.hpp).
  EXPECT_DEATH(traffic::ZipfianSampler(100, 0.0), "theta");
  EXPECT_DEATH(traffic::ZipfianSampler(100, 1.0), "theta");
}

// --- rate curves -----------------------------------------------------------

TEST(RateCurve, ParsesEveryShape) {
  const auto constant =
      traffic::RateCurve::parse("constant:rate=100,seconds=2");
  ASSERT_EQ(constant.phases().size(), 1u);
  EXPECT_EQ(constant.phases()[0].name, "steady");
  EXPECT_DOUBLE_EQ(constant.total_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(constant.rate_at(1.0), 100.0);
  EXPECT_DOUBLE_EQ(constant.rate_at(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(constant.rate_at(2.0), 0.0);

  const auto ramp = traffic::RateCurve::parse("ramp:from=0,to=100,seconds=4");
  EXPECT_DOUBLE_EQ(ramp.rate_at(2.0), 50.0);

  const auto diurnal =
      traffic::RateCurve::parse("diurnal:low=10,high=90,seconds=8");
  ASSERT_EQ(diurnal.phases().size(), 4u);
  EXPECT_EQ(diurnal.phases()[0].name, "trough");
  EXPECT_EQ(diurnal.phases()[2].name, "peak");
  EXPECT_DOUBLE_EQ(diurnal.total_seconds(), 8.0);
  EXPECT_DOUBLE_EQ(diurnal.rate_at(3.0), 50.0);  // middle of the rise

  const auto flash =
      traffic::RateCurve::parse("flash:base=50,spike=500,seconds=10");
  ASSERT_EQ(flash.phases().size(), 3u);
  EXPECT_EQ(flash.phases()[1].name, "spike");
  EXPECT_DOUBLE_EQ(flash.rate_at(1.0), 50.0);
  EXPECT_DOUBLE_EQ(flash.rate_at(4.5), 500.0);
  EXPECT_DOUBLE_EQ(flash.rate_at(9.0), 50.0);

  const auto phases =
      traffic::RateCurve::parse("phases:warm=10@1,burst=200@2,cool=5@1");
  ASSERT_EQ(phases.phases().size(), 3u);
  EXPECT_EQ(phases.phases()[1].name, "burst");
  EXPECT_DOUBLE_EQ(phases.total_seconds(), 4.0);
  EXPECT_EQ(phases.phase_index_at(1.5), 1u);
  EXPECT_EQ(phases.phase_index_at(99.0), 2u);
}

TEST(RateCurve, RejectsMalformedSpecs) {
  EXPECT_THROW(traffic::RateCurve::parse("nocolon"), std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("sine:rate=1,seconds=1"),
               std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("constant:rate=100"),
               std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("constant:rate=x,seconds=1"),
               std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("constant:rate=1,bogus=2,seconds=1"),
               std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("constant:rate=1,seconds=0"),
               std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("constant:rate=-5,seconds=1"),
               std::invalid_argument);
  EXPECT_THROW(
      traffic::RateCurve::parse("flash:base=1,spike=2,seconds=1,spike_at=0.9"),
      std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("phases:"), std::invalid_argument);
  EXPECT_THROW(traffic::RateCurve::parse("phases:a=1"), std::invalid_argument);
}

// --- op mixes --------------------------------------------------------------

TEST(OpMix, RegistryRoundTripsAndSharesSumToOne) {
  const auto names = traffic::known_mixes();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    const traffic::OpMix& mix = traffic::mix_by_name(name);
    EXPECT_EQ(mix.name, name);
    double total = 0.0;
    for (const double share : mix.share) total += share;
    EXPECT_NEAR(total, 1.0, 1e-9) << name;
  }
  EXPECT_THROW(traffic::mix_by_name("ycsb-z"), std::invalid_argument);
  // Every mix must exercise the zero-sum invariant through some write op.
  for (const auto& name : names) {
    const traffic::OpMix& mix = traffic::mix_by_name(name);
    double writes = 0.0;
    for (std::size_t i = 0; i < mix.share.size(); ++i) {
      if (traffic::op_writes(static_cast<traffic::OpKind>(i))) {
        writes += mix.share[i];
      }
    }
    EXPECT_GT(writes, 0.0) << name;
  }
}

// --- config parsing --------------------------------------------------------

TEST(TrafficConfig, ParsesSemicolonGrammarWithNestedCurve) {
  const traffic::TrafficConfig config = traffic::parse_traffic_config(
      "mix=ycsb-e;dist=uniform;keys=2048;accounts=64;clients=8;seed=9;"
      "curve=flash:base=100,spike=900,seconds=6;slo_ms=2.5;index=btree");
  EXPECT_EQ(config.mix, "ycsb-e");
  EXPECT_EQ(config.dist, "uniform");
  EXPECT_EQ(config.keys, 2048u);
  EXPECT_EQ(config.accounts, 64u);
  EXPECT_EQ(config.clients, 8u);
  EXPECT_EQ(config.seed, 9u);
  EXPECT_EQ(config.curve, "flash:base=100,spike=900,seconds=6");
  EXPECT_EQ(config.slo_us, 2500u);
  EXPECT_EQ(config.index, "btree");
}

TEST(TrafficConfig, RejectsUnknownKeysAndBadValues) {
  EXPECT_THROW(traffic::parse_traffic_config("bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_config("keys=abc"),
               std::invalid_argument);
  EXPECT_THROW(traffic::parse_traffic_config("justakey"),
               std::invalid_argument);
}

// --- arrival schedules -----------------------------------------------------

traffic::TrafficConfig small_config() {
  traffic::TrafficConfig config;
  config.mix = "ycsb-a";
  config.keys = 1024;
  config.accounts = 32;
  config.clients = 8;
  config.seed = 11;
  config.curve = "constant:rate=500,seconds=2";
  return config;
}

TEST(Arrival, DeterministicPerSeedAndSensitiveToIt) {
  const traffic::TrafficConfig config = small_config();
  const traffic::Schedule a = traffic::build_schedule(config);
  const traffic::Schedule b = traffic::build_schedule(config);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].arrival_ns, b.requests[i].arrival_ns);
    EXPECT_EQ(a.requests[i].client, b.requests[i].client);
    EXPECT_EQ(a.requests[i].seq, b.requests[i].seq);
    EXPECT_EQ(a.requests[i].op, b.requests[i].op);
    EXPECT_EQ(a.requests[i].key, b.requests[i].key);
  }

  traffic::TrafficConfig other = config;
  other.seed = 12;
  const traffic::Schedule c = traffic::build_schedule(other);
  bool differs = c.requests.size() != a.requests.size();
  for (std::size_t i = 0; !differs && i < a.requests.size(); ++i) {
    differs = a.requests[i].arrival_ns != c.requests[i].arrival_ns;
  }
  EXPECT_TRUE(differs);
}

TEST(Arrival, SchedulesAreOrderedSequencedAndRateAccurate) {
  const traffic::TrafficConfig config = small_config();
  const traffic::Schedule schedule = traffic::build_schedule(config);
  // Poisson count at rate 500 over 2 s: mean 1000, sd ~32. ±20% is > 6 sd.
  EXPECT_GT(schedule.requests.size(), 800u);
  EXPECT_LT(schedule.requests.size(), 1200u);

  std::vector<std::uint32_t> next_seq(config.clients, 1);
  std::uint64_t last_arrival = 0;
  for (const traffic::Request& req : schedule.requests) {
    EXPECT_GE(req.arrival_ns, last_arrival);
    last_arrival = req.arrival_ns;
    ASSERT_LT(req.client, config.clients);
    // Per-client sequence numbers are dense from 1 — the property the
    // checksum verifier leans on.
    EXPECT_EQ(req.seq, next_seq[req.client]++);
  }
}

TEST(Arrival, PhaseIndicesFollowTheCurve) {
  traffic::TrafficConfig config = small_config();
  config.curve = "phases:warm=200@1,burst=800@1";
  const traffic::Schedule schedule = traffic::build_schedule(config);
  std::uint64_t in_warm = 0;
  std::uint64_t in_burst = 0;
  for (const traffic::Request& req : schedule.requests) {
    if (req.phase == 0) {
      ++in_warm;
      EXPECT_LT(req.arrival_ns, 1'000'000'000u);
    } else {
      ASSERT_EQ(req.phase, 1u);
      ++in_burst;
      EXPECT_GE(req.arrival_ns, 1'000'000'000u);
    }
  }
  // Burst offers 4× the warm rate.
  EXPECT_GT(in_burst, 2 * in_warm);
}

TEST(Arrival, RejectsUndersizedConfigs) {
  traffic::TrafficConfig config = small_config();
  config.accounts = 4;  // payment needs disjoint customer/warehouse pools
  EXPECT_THROW(traffic::build_schedule(config), std::invalid_argument);
  config = small_config();
  config.clients = 0;
  EXPECT_THROW(traffic::build_schedule(config), std::invalid_argument);
  config = small_config();
  config.mix = "nope";
  EXPECT_THROW(traffic::build_schedule(config), std::invalid_argument);
  config = small_config();
  config.index = "lsm";  // only hash and btree back the order table
  EXPECT_THROW(traffic::build_schedule(config), std::invalid_argument);
}

// --- end-to-end on the malleable runtime ------------------------------------

struct RunOutcome {
  bool completed = false;
  bool verified = false;
  std::string error;
  traffic::TrafficSummary summary;
};

RunOutcome run_workload(traffic::KvTrafficWorkload& workload,
                        stm::Runtime& rt, int level,
                        milliseconds timeout = milliseconds(30000)) {
  control::FixedController controller(control::LevelBounds{1, 8}, level,
                                      "Fixed");
  runtime::ProcessConfig config;
  config.pool.pool_size = 8;
  config.monitor.period = milliseconds(10);
  config.monitor.stm_runtime = &rt;
  config.monitor.record_trace = false;
  runtime::TunedProcess process(rt, workload, controller, config);
  RunOutcome outcome;
  process.run_to_completion(timeout, &outcome.completed);
  outcome.verified = workload.verify(&outcome.error);
  outcome.summary = workload.summary();
  return outcome;
}

TEST(KvService, DrainsScheduleAndVerifies) {
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(
      rt, traffic::build_schedule(small_config()));
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.verified) << outcome.error;
  EXPECT_TRUE(workload.done());
  EXPECT_EQ(outcome.summary.executed, outcome.summary.scheduled);
  std::uint64_t phase_total = 0;
  for (const traffic::PhaseSummary& phase : outcome.summary.phases) {
    phase_total += phase.completed;
    EXPECT_EQ(phase.completed, phase.scheduled);
  }
  EXPECT_EQ(phase_total, outcome.summary.scheduled);
  EXPECT_GT(outcome.summary.overall.p50_us, 0.0);
  EXPECT_GE(outcome.summary.overall.p999_us, outcome.summary.overall.p99_us);
  EXPECT_GE(outcome.summary.overall.p99_us, outcome.summary.overall.p50_us);
}

TEST(KvService, TpccLiteMixDrainsAndVerifies) {
  traffic::TrafficConfig config = small_config();
  config.mix = "tpcc-lite";
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.verified) << outcome.error;
}

TEST(KvService, BTreeOrderIndexDrainsScansAndVerifies) {
  traffic::TrafficConfig config = small_config();
  config.mix = "tpcc-lite";
  config.index = "btree";
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  ASSERT_TRUE(workload.order_index_is_btree());
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.verified) << outcome.error;
  // Every scheduled new_order landed exactly one row in the B+-tree, all
  // of them inside the order-key namespace and in insertion (= key) order.
  EXPECT_EQ(static_cast<std::uint64_t>(workload.orders().unsafe_size()),
            workload.schedule().order_rows);
  std::int64_t last_key = traffic::kOrderBase - 1;
  workload.orders().unsafe_for_each([&](std::int64_t key, std::int64_t) {
    EXPECT_GT(key, last_key);
    EXPECT_LT(key, traffic::kDistrictBase);
    last_key = key;
  });
}

TEST(KvService, VerifyCatchesOrderBtreeTampering) {
  traffic::TrafficConfig config = small_config();
  config.mix = "tpcc-lite";
  config.index = "btree";
  config.curve = "constant:rate=400,seconds=1";
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.verified) << outcome.error;

  // A phantom order with no new_order behind it must trip the row count.
  stm::TxnDesc& ctx = rt.register_thread();
  stm::atomically(ctx, [&](stm::Txn& tx) {
    workload.orders().insert(
        tx, traffic::kOrderBase + (std::int64_t{1} << 30), 0);
  });
  std::string error;
  EXPECT_FALSE(workload.verify(&error));
  EXPECT_NE(error.find("order rows"), std::string::npos) << error;
}

TEST(KvService, VerifyCatchesZeroSumTampering) {
  traffic::TrafficConfig config = small_config();
  config.curve = "constant:rate=400,seconds=1";
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.verified) << outcome.error;

  // A rogue credit with no matching debit — the classic lost-effect shape.
  stm::TxnDesc& ctx = rt.register_thread();
  stm::atomically(ctx, [&](stm::Txn& tx) {
    const std::int64_t account = traffic::kAccountBase;
    workload.map().put(tx, account,
                       workload.map().get(tx, account).value_or(0) + 100);
  });
  std::string error;
  EXPECT_FALSE(workload.verify(&error));
  EXPECT_NE(error.find("zero-sum"), std::string::npos) << error;
}

TEST(KvService, VerifyCatchesDuplicatedEffects) {
  traffic::TrafficConfig config = small_config();
  config.curve = "constant:rate=400,seconds=1";
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  const RunOutcome outcome = run_workload(workload, rt, 4);
  ASSERT_TRUE(outcome.completed);
  ASSERT_TRUE(outcome.verified) << outcome.error;

  // Replaying a request would bump its client's applied count a second
  // time; simulate just that and expect the count check to fire.
  stm::TxnDesc& ctx = rt.register_thread();
  stm::atomically(ctx, [&](stm::Txn& tx) {
    const std::int64_t count_key = traffic::kClientBase;  // client 0
    workload.map().put(tx, count_key,
                       workload.map().get(tx, count_key).value_or(0) + 1);
  });
  std::string error;
  EXPECT_FALSE(workload.verify(&error));
  EXPECT_NE(error.find("applied count"), std::string::npos) << error;
}

// --- open-loop semantics under chaos ---------------------------------------

TEST_F(TrafficChaosTest, BacklogGrowsWhenServerStalled) {
  traffic::TrafficConfig config = small_config();
  config.curve = "constant:rate=400,seconds=1";

  // Healthy run: one worker keeps up with sub-millisecond requests.
  std::uint64_t healthy_backlog = 0;
  {
    stm::Runtime rt;
    traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
    const RunOutcome outcome = run_workload(workload, rt, 1);
    ASSERT_TRUE(outcome.completed);
    healthy_backlog = outcome.summary.overall.max_backlog;
  }

  // Stalled run: every request eats a 5 ms injected stall, so one worker
  // serves ~200/s against 400/s offered — the open-loop generator must
  // pile up a backlog instead of slowing down.
  auto plan = fault::Plan::parse("seed=3;traffic_stall:us=5000,every=1");
  fault::arm(*plan);
  stm::Runtime rt;
  traffic::KvTrafficWorkload workload(rt, traffic::build_schedule(config));
  const RunOutcome outcome =
      run_workload(workload, rt, 1, milliseconds(60000));
  fault::disarm();
  ASSERT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.verified) << outcome.error;
  const std::uint64_t stalled_backlog = outcome.summary.overall.max_backlog;
  EXPECT_GE(stalled_backlog, 50u);
  EXPECT_GT(stalled_backlog, 3 * std::max<std::uint64_t>(healthy_backlog, 1));
  // Latency inflation is the other side of the same coin.
  EXPECT_GT(outcome.summary.overall.p99_us, 5000.0);
}

// --- listing agreement -----------------------------------------------------

TEST(Listing, FormatsSortedDeduplicatedNames) {
  EXPECT_EQ(util::format_name_list({"b", "a", "b", "c"}), "a\nb\nc\n");
  EXPECT_EQ(util::format_name_list({}), "");
}

TEST(Listing, RegistriesRoundTripThroughTheSharedPrinter) {
  // Controllers: every printed name must build through the factory.
  control::PolicyConfig policy_config;
  policy_config.contexts = 4;
  policy_config.allocator = std::make_shared<control::CentralAllocator>(4);
  for (const auto name : control::known_policies()) {
    EXPECT_NO_THROW(control::make_controller(name, policy_config)) << name;
  }
  // Backends: every printed name must parse back to its kind.
  for (const auto kind : stm::known_backends()) {
    const auto parsed = stm::parse_backend(stm::backend_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  // Mixes: every printed name must resolve in the mix registry.
  std::vector<std::string_view> mix_views;
  for (const auto& name : traffic::known_mixes()) {
    EXPECT_NO_THROW(traffic::mix_by_name(name));
    mix_views.emplace_back(name);
  }
  // And the rendered listing is sorted + newline-terminated.
  const std::string rendered = util::format_name_list(mix_views);
  std::vector<std::string_view> sorted = mix_views;
  std::sort(sorted.begin(), sorted.end());
  std::string expected;
  for (const auto name : sorted) {
    expected += name;
    expected += '\n';
  }
  EXPECT_EQ(rendered, expected);
}

}  // namespace
}  // namespace rubic

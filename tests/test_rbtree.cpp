// Red-black tree tests: functional behaviour, structural invariants under
// randomized operation sequences (property-style, parameterized over seeds
// and mixes), model checking against std::map, and concurrent stress.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/util/rng.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/tds/rbtree.hpp"

namespace rubic::tds {
namespace {

class RbTreeTest : public ::testing::Test {
 protected:
  stm::Runtime rt_;
  stm::TxnDesc& ctx_ = rt_.register_thread();
  RbTree tree_;

  bool insert(std::int64_t k, std::int64_t v) {
    return stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.insert(tx, k, v); });
  }
  bool erase(std::int64_t k) {
    return stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.erase(tx, k); });
  }
  bool contains(std::int64_t k) {
    return stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.contains(tx, k); });
  }
  std::optional<std::int64_t> get(std::int64_t k) {
    return stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.get(tx, k); });
  }
};

TEST_F(RbTreeTest, EmptyTree) {
  EXPECT_FALSE(contains(1));
  EXPECT_EQ(get(1), std::nullopt);
  EXPECT_EQ(tree_.unsafe_size(), 0u);
  EXPECT_TRUE(tree_.check_invariants());
  EXPECT_FALSE(erase(1));
}

TEST_F(RbTreeTest, InsertFindErase) {
  EXPECT_TRUE(insert(5, 50));
  EXPECT_FALSE(insert(5, 51)) << "duplicate insert must be rejected";
  EXPECT_TRUE(contains(5));
  EXPECT_EQ(get(5), 50);
  EXPECT_EQ(tree_.unsafe_size(), 1u);
  EXPECT_TRUE(erase(5));
  EXPECT_FALSE(contains(5));
  EXPECT_EQ(tree_.unsafe_size(), 0u);
  EXPECT_TRUE(tree_.check_invariants());
}

TEST_F(RbTreeTest, UpdateExistingKey) {
  insert(1, 10);
  EXPECT_TRUE(stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.update(tx, 1, 11); }));
  EXPECT_EQ(get(1), 11);
  EXPECT_FALSE(stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.update(tx, 2, 0); }));
}

TEST_F(RbTreeTest, AscendingInsertionStaysBalanced) {
  constexpr std::int64_t kN = 2000;
  for (std::int64_t i = 0; i < kN; ++i) ASSERT_TRUE(insert(i, i));
  std::string error;
  ASSERT_TRUE(tree_.check_invariants(&error)) << error;
  EXPECT_EQ(tree_.unsafe_size(), static_cast<std::size_t>(kN));
  for (std::int64_t i = 0; i < kN; ++i) ASSERT_TRUE(contains(i));
}

TEST_F(RbTreeTest, DescendingInsertionStaysBalanced) {
  for (std::int64_t i = 2000; i > 0; --i) ASSERT_TRUE(insert(i, i));
  std::string error;
  ASSERT_TRUE(tree_.check_invariants(&error)) << error;
}

TEST_F(RbTreeTest, EraseAllAscending) {
  for (std::int64_t i = 0; i < 500; ++i) insert(i, i);
  for (std::int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(erase(i)) << i;
    std::string error;
    ASSERT_TRUE(tree_.check_invariants(&error)) << "after erase " << i << ": " << error;
  }
  EXPECT_EQ(tree_.unsafe_size(), 0u);
}

TEST_F(RbTreeTest, LowerBoundKey) {
  for (std::int64_t k : {10, 20, 30}) insert(k, k);
  auto lb = [&](std::int64_t k) {
    return stm::atomically(ctx_, [&](stm::Txn& tx) { return tree_.lower_bound_key(tx, k); });
  };
  EXPECT_EQ(lb(5), 10);
  EXPECT_EQ(lb(10), 10);
  EXPECT_EQ(lb(11), 20);
  EXPECT_EQ(lb(30), 30);
  EXPECT_EQ(lb(31), std::nullopt);
}

TEST_F(RbTreeTest, AbortedInsertLeavesNoTrace) {
  insert(1, 1);
  EXPECT_THROW(stm::atomically(ctx_,
                               [&](stm::Txn& tx) {
                                 tree_.insert(tx, 2, 2);
                                 tree_.insert(tx, 3, 3);
                                 throw std::runtime_error("abort");
                               }),
               std::runtime_error);
  EXPECT_FALSE(contains(2));
  EXPECT_FALSE(contains(3));
  EXPECT_EQ(tree_.unsafe_size(), 1u);
  EXPECT_TRUE(tree_.check_invariants());
}

TEST_F(RbTreeTest, UnsafeForEachInOrder) {
  for (std::int64_t k : {5, 1, 9, 3, 7}) insert(k, k * 10);
  std::vector<std::int64_t> keys;
  tree_.unsafe_for_each([&](std::int64_t k, std::int64_t v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
}

// --- property tests: randomized op sequences checked against std::map ---

struct RandomOpsParam {
  std::uint64_t seed;
  int key_range;
  int erase_pct;
};

class RbTreeRandomOps : public ::testing::TestWithParam<RandomOpsParam> {};

TEST_P(RbTreeRandomOps, MatchesStdMapAndKeepsInvariants) {
  const auto [seed, key_range, erase_pct] = GetParam();
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  RbTree tree;
  std::map<std::int64_t, std::int64_t> model;
  util::Xoshiro256 rng(seed);

  for (int op = 0; op < 4000; ++op) {
    const auto key = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(key_range)));
    const bool do_erase = rng.below(100) < static_cast<std::uint64_t>(erase_pct);
    if (do_erase) {
      const bool tree_did = stm::atomically(
          ctx, [&](stm::Txn& tx) { return tree.erase(tx, key); });
      EXPECT_EQ(tree_did, model.erase(key) == 1) << "op " << op;
    } else {
      const bool tree_did = stm::atomically(
          ctx, [&](stm::Txn& tx) { return tree.insert(tx, key, key + 1); });
      EXPECT_EQ(tree_did, model.emplace(key, key + 1).second) << "op " << op;
    }
    if (op % 256 == 0) {
      std::string error;
      ASSERT_TRUE(tree.check_invariants(&error)) << "op " << op << ": " << error;
    }
  }
  std::string error;
  ASSERT_TRUE(tree.check_invariants(&error)) << error;
  EXPECT_EQ(tree.unsafe_size(), model.size());
  // Full content equality.
  std::vector<std::pair<std::int64_t, std::int64_t>> contents;
  tree.unsafe_for_each([&](std::int64_t k, std::int64_t v) {
    contents.emplace_back(k, v);
  });
  ASSERT_EQ(contents.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : contents) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RbTreeRandomOps,
    ::testing::Values(RandomOpsParam{1, 64, 50},    // small hot key space
                      RandomOpsParam{2, 64, 70},    // erase-heavy
                      RandomOpsParam{3, 4096, 50},  // sparse
                      RandomOpsParam{4, 16, 50},    // tiny, constant collisions
                      RandomOpsParam{5, 1024, 30},  // growth-heavy
                      RandomOpsParam{6, 2, 50}),    // degenerate two-key
    [](const auto& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_range" +
             std::to_string(param_info.param.key_range) + "_erase" +
             std::to_string(param_info.param.erase_pct);
    });

// --- concurrent stress: invariants must hold after parallel churn ---

TEST(RbTreeConcurrent, ParallelChurnPreservesInvariants) {
  stm::Runtime rt;
  RbTree tree;
  {
    stm::TxnDesc& ctx = rt.register_thread();
    for (std::int64_t i = 0; i < 256; i += 2) {
      stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, i, i); });
    }
  }
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(1000 + t);
      barrier.arrive_and_wait();
      for (int op = 0; op < 1500; ++op) {
        const auto key = static_cast<std::int64_t>(rng.below(256));
        switch (rng.below(3)) {
          case 0:
            stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, key, key); });
            break;
          case 1:
            stm::atomically(ctx, [&](stm::Txn& tx) { tree.erase(tx, key); });
            break;
          default:
            stm::atomically(ctx, [&](stm::Txn& tx) { (void)tree.get(tx, key); });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(tree.check_invariants(&error)) << error;
}

TEST(RbTreeConcurrent, SizeMatchesNetInsertions) {
  stm::Runtime rt;
  RbTree tree;
  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  // Disjoint key ranges: every insert/erase succeeds exactly once, so the
  // final size is exactly known.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      const std::int64_t base = t * 10000;
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, base + i, i); });
      }
      for (int i = 0; i < kPerThread; i += 2) {
        stm::atomically(ctx, [&](stm::Txn& tx) { tree.erase(tx, base + i); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(tree.unsafe_size(),
            static_cast<std::size_t>(kThreads * kPerThread / 2));
  std::string error;
  EXPECT_TRUE(tree.check_invariants(&error)) << error;
}

}  // namespace
}  // namespace rubic::tds

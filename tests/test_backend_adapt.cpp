// Online STM backend adaptation: the AdaptiveController's deterministic
// explore-then-commit schedule, the ControllerGuard's BackendAdapter
// defenses, MalleablePool::run_quiesced + Runtime::try_set_backend
// quiescence semantics, the monitor's end-to-end switch path (trace event,
// telemetry label flip, bus field), and the acceptance property: an
// adaptive-controller audit log containing at least one online switch
// replays byte-identically through telemetry::replay_audit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/control/adaptive.hpp"
#include "src/control/backend_adapter.hpp"
#include "src/control/factory.hpp"
#include "src/control/fixed.hpp"
#include "src/control/guard.hpp"
#include "src/fault/fault.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/runtime/monitor.hpp"
#include "src/stm/stm.hpp"
#include "src/telemetry/audit.hpp"
#include "src/telemetry/telemetry.hpp"

namespace rubic {
namespace {

using namespace std::chrono_literals;
using control::AdaptiveController;
using control::BackendSignal;

// --- candidate-universe sync ------------------------------------------------

// The control library cannot link the STM (stm -> telemetry -> control), so
// default_backend_candidates() duplicates stm::known_backends() by hand.
// This test is the sync contract: it fails the moment an engine is added to
// one list but not the other.
TEST(BackendCandidates, MatchDefaultListToStmRegistry) {
  const std::vector<std::string> candidates =
      control::default_backend_candidates();
  const std::vector<stm::BackendKind> kinds = stm::known_backends();
  ASSERT_EQ(candidates.size(), kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(candidates[i], std::string(stm::backend_name(kinds[i])))
        << "candidate list diverged from stm::known_backends() at " << i;
    // The monitor publishes static_cast<int>(kind) as the bus backend
    // index; the enum must stay aligned with the display order.
    EXPECT_EQ(static_cast<std::size_t>(kinds[i]), i);
  }
}

// --- the adaptive schedule, driven synthetically ---------------------------

std::unique_ptr<AdaptiveController> make_adaptive(int initial = 0) {
  return std::make_unique<AdaptiveController>(
      std::make_unique<control::FixedController>(control::LevelBounds{1, 8}, 4,
                                                 "Fixed"),
      control::default_backend_candidates(), initial);
}

BackendSignal tput(double t) {
  BackendSignal s;
  s.throughput = t;
  return s;
}

TEST(AdaptiveSchedule, WarmsUpProbesEveryCandidateThenCommitsToArgmax) {
  auto adaptive = make_adaptive(/*initial=*/1);
  const int n = static_cast<int>(adaptive->candidates().size());
  ASSERT_EQ(n, 4);

  // Warmup: the initial backend holds.
  for (int i = 0; i < AdaptiveController::kWarmupRounds; ++i) {
    EXPECT_EQ(adaptive->desired_backend(), 1) << "round " << i;
    adaptive->on_backend_signal(tput(100.0));
  }
  // Probe phase: each candidate in list order, skip rounds then scored
  // rounds; candidate 2 gets the highest throughput.
  const double scores[] = {50.0, 80.0, 120.0, 60.0};
  std::vector<int> visited;
  for (int c = 0; c < n; ++c) {
    visited.push_back(adaptive->desired_backend());
    for (int r = 0;
         r < AdaptiveController::kProbeSkip + AdaptiveController::kProbeRounds;
         ++r) {
      EXPECT_EQ(adaptive->desired_backend(), c);
      adaptive->on_backend_signal(tput(scores[c]));
    }
  }
  EXPECT_EQ(visited, (std::vector<int>{0, 1, 2, 3}))
      << "probe must visit every candidate in order";
  EXPECT_EQ(adaptive->desired_backend(), 2) << "argmax candidate must win";
}

TEST(AdaptiveSchedule, SustainedDegradationTriggersReprobe) {
  auto adaptive = make_adaptive();
  // Fast-forward through warmup + probing; every candidate scores 100.
  const int probe_len =
      AdaptiveController::kProbeSkip + AdaptiveController::kProbeRounds;
  const int to_commit =
      AdaptiveController::kWarmupRounds +
      probe_len * static_cast<int>(adaptive->candidates().size());
  for (int i = 0; i < to_commit; ++i) adaptive->on_backend_signal(tput(100.0));
  const int committed = adaptive->desired_backend();

  // A transient dip shorter than kDegradeRounds must not re-trigger.
  for (int i = 0; i < AdaptiveController::kDegradeRounds - 1; ++i) {
    adaptive->on_backend_signal(tput(10.0));
  }
  adaptive->on_backend_signal(tput(100.0));
  EXPECT_EQ(adaptive->desired_backend(), committed);

  // A sustained collapse below kRetriggerFraction × committed score does.
  for (int i = 0; i < AdaptiveController::kDegradeRounds; ++i) {
    adaptive->on_backend_signal(tput(10.0));
  }
  EXPECT_EQ(adaptive->desired_backend(), 0)
      << "re-probe must restart from candidate 0";
}

TEST(AdaptiveSchedule, ResetRestoresTheInitialBackend) {
  auto adaptive = make_adaptive(/*initial=*/3);
  for (int i = 0; i < 40; ++i) adaptive->on_backend_signal(tput(100.0));
  adaptive->reset();
  EXPECT_EQ(adaptive->desired_backend(), 3);
}

// --- factory forms ---------------------------------------------------------

TEST(AdaptiveFactory, BuildsPlainAndPrefixedFormsRejectsNesting) {
  control::PolicyConfig config;
  config.contexts = 8;
  const auto plain = control::make_controller("adaptive", config);
  EXPECT_EQ(plain->name(), "adaptive:RUBIC");
  const auto wrapped = control::make_controller("adaptive:ebs", config);
  EXPECT_EQ(wrapped->name(), "adaptive:EBS");
  EXPECT_THROW((void)control::make_controller("adaptive:adaptive", config),
               std::invalid_argument);
  EXPECT_THROW((void)control::make_controller("adaptive:adaptive:ebs", config),
               std::invalid_argument);
  EXPECT_THROW((void)control::make_controller("adaptive:bogus", config),
               std::invalid_argument);

  EXPECT_TRUE(control::policy_known("adaptive"));
  EXPECT_TRUE(control::policy_known("adaptive:ebs"));
  EXPECT_TRUE(control::policy_known("rubic"));
  EXPECT_FALSE(control::policy_known("adaptive:adaptive"));
  EXPECT_FALSE(control::policy_known("adaptive:bogus"));
  EXPECT_FALSE(control::policy_known("bogus"));
}

TEST(AdaptiveFactory, InitialBackendSeedsTheStartIndex) {
  control::PolicyConfig config;
  config.contexts = 8;
  config.initial_backend = "tl2";
  const auto controller = control::make_controller("adaptive", config);
  auto* adapter = dynamic_cast<control::BackendAdapter*>(controller.get());
  ASSERT_NE(adapter, nullptr);
  EXPECT_EQ(adapter->desired_backend(), 2);
  EXPECT_EQ(adapter->candidates()[2], "tl2");

  // An initial backend outside the candidate universe falls back to 0.
  config.initial_backend = "no_such_engine";
  const auto fallback = control::make_controller("adaptive", config);
  EXPECT_EQ(dynamic_cast<control::BackendAdapter*>(fallback.get())
                ->desired_backend(),
            0);
}

// --- guard defenses --------------------------------------------------------

// A hostile adapter: throws on every Nth signal and answers out-of-range
// indexes in between.
class EvilAdapter final : public control::Controller,
                          public control::BackendAdapter {
 public:
  int initial_level() const override { return 1; }
  int on_sample(double) override { return 1; }
  void reset() override {}
  std::string_view name() const override { return "Evil"; }
  void on_backend_signal(const BackendSignal&) override {
    if (++calls_ % 2 == 0) throw std::runtime_error("boom");
  }
  int desired_backend() const override { return calls_ % 3 == 0 ? -7 : 99; }
  const std::vector<std::string>& candidates() const override {
    return candidates_;
  }

 private:
  mutable int calls_ = 0;
  std::vector<std::string> candidates_ =
      control::default_backend_candidates();
};

TEST(AdapterGuard, DiscoversAdaptersAndAbsorbsHostility) {
  control::PolicyConfig config;
  config.contexts = 8;
  const auto plain = control::make_controller("rubic", config);
  control::ControllerGuard plain_guard(*plain, control::LevelBounds{1, 8});
  EXPECT_FALSE(plain_guard.adapts_backend());
  EXPECT_EQ(plain_guard.backend_candidates(), nullptr);

  EvilAdapter evil;
  control::ControllerGuard guard(evil, control::LevelBounds{1, 8});
  ASSERT_TRUE(guard.adapts_backend());
  const int count = static_cast<int>(guard.backend_candidates()->size());
  for (int i = 0; i < 20; ++i) {
    const int desired = guard.on_backend_signal(tput(100.0));
    EXPECT_GE(desired, 0);
    EXPECT_LT(desired, count) << "guard must clamp out-of-range answers";
  }
  EXPECT_GT(guard.absorbed_exceptions(), 0u);
}

// --- quiescence ------------------------------------------------------------

// A workload whose every task is a real transaction, so a mid-task backend
// switch would be a protocol violation (caught by try_set_backend).
class TxnWorkload final : public workloads::Workload {
 public:
  explicit TxnWorkload(stm::Runtime&) {}
  std::string_view name() const override { return "txn"; }
  void run_task(stm::TxnDesc& ctx, util::Xoshiro256& rng) override {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      const std::size_t i = rng.below(kVars);
      const auto v = vars_[i].read(tx);
      vars_[i].write(tx, v + 1);
    });
    std::this_thread::yield();
  }
  bool verify(std::string*) override { return true; }
  std::int64_t total() {
    std::int64_t sum = 0;
    for (auto& var : vars_) sum += var.unsafe_read();
    return sum;
  }

 private:
  static constexpr std::size_t kVars = 4;
  stm::TVar<std::int64_t> vars_[kVars];
};

template <typename Pred>
bool eventually(Pred&& pred, int budget_ms = 5000) {
  for (int i = 0; i < budget_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(QuiescentSwitch, RunQuiescedSwitchesUnderLiveLoad) {
  stm::RuntimeConfig config;
  config.backend = stm::BackendKind::kOrecSwiss;
  stm::Runtime rt(config);
  TxnWorkload workload(rt);
  runtime::MalleablePool pool(rt, workload,
                              runtime::PoolConfig{.pool_size = 4,
                                                  .initial_level = 4});
  ASSERT_TRUE(eventually([&] { return pool.total_completed() > 100; }));

  // Walk the runtime through every engine while the pool hammers it.
  for (const stm::BackendKind kind :
       {stm::BackendKind::kNorec, stm::BackendKind::kTl2,
        stm::BackendKind::k2plUndo, stm::BackendKind::kOrecSwiss}) {
    bool switched = false;
    pool.run_quiesced([&] { switched = rt.try_set_backend(kind); });
    EXPECT_TRUE(switched) << "quiesced pool must allow the switch";
    EXPECT_EQ(rt.backend(), kind);
    const std::uint64_t before = pool.total_completed();
    EXPECT_TRUE(eventually([&] { return pool.total_completed() > before; }))
        << "pool must resume after the switch";
  }
  pool.stop();
  // Every increment survived four protocol changes.
  EXPECT_EQ(workload.total(),
            static_cast<std::int64_t>(pool.total_completed()));
}

TEST(QuiescentSwitch, TrySetBackendRefusesWhileAForeignTxnIsActive) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  ctx.begin(true);
  EXPECT_FALSE(rt.try_set_backend(stm::BackendKind::kNorec))
      << "an in-flight transaction must veto the switch";
  EXPECT_EQ(rt.backend(), rt.config().backend);
  ctx.rollback(stm::AbortCause::kUserRetry);
  EXPECT_TRUE(rt.try_set_backend(stm::BackendKind::kNorec));
  EXPECT_EQ(rt.backend(), stm::BackendKind::kNorec);
}

// --- the monitor end-to-end + the audit/replay acceptance property ---------

struct AdaptiveRun {
  telemetry::AuditMeta meta;
  std::vector<telemetry::AuditRecord> records;
  std::uint64_t switches = 0;
  std::int64_t workload_total = 0;
  std::uint64_t tasks_completed = 0;
  stm::BackendKind final_backend = stm::BackendKind::kOrecSwiss;
};

AdaptiveRun run_adaptive_monitor(const char* policy, std::uint64_t max_rounds,
                                 stm::BackendKind initial) {
  AdaptiveRun out;
  stm::RuntimeConfig stm_config;
  stm_config.backend = initial;
  stm::Runtime rt(stm_config);
  TxnWorkload workload(rt);

  control::PolicyConfig policy_config;
  policy_config.contexts = 4;
  policy_config.pool_size = 4;
  policy_config.initial_backend = std::string(stm::backend_name(initial));
  auto controller = control::make_controller(policy, policy_config);

  telemetry::AuditLog audit;
  out.meta.policy = policy;
  out.meta.min_level = 1;
  out.meta.max_level = 4;
  out.meta.contexts = 4;
  out.meta.pool = 4;
  out.meta.seed = 42;
  out.meta.stm_backend = std::string(stm::backend_name(initial));
  audit.set_meta(out.meta);

  runtime::MalleablePool pool(rt, workload,
                              runtime::PoolConfig{.pool_size = 4,
                                                  .initial_level = 2});
  runtime::MonitorConfig monitor_config;
  monitor_config.period = 2ms;
  monitor_config.raise_priority = false;
  monitor_config.record_trace = false;
  monitor_config.max_rounds = max_rounds;
  monitor_config.stm_runtime = &rt;
  monitor_config.audit = &audit;
  {
    runtime::Monitor monitor(pool, *controller, monitor_config);
    EXPECT_TRUE(
        eventually([&] { return monitor.rounds() >= max_rounds; }, 30000))
        << "monitor stalled at round " << monitor.rounds();
    monitor.stop();
    out.switches = monitor.backend_switches();
  }
  pool.stop();
  out.records = audit.records();
  out.workload_total = workload.total();
  out.tasks_completed = pool.total_completed();
  out.final_backend = rt.backend();
  return out;
}

TEST(AdaptiveMonitor, SwitchesBackendsOnlineWithoutLosingUpdates) {
  const AdaptiveRun run =
      run_adaptive_monitor("adaptive", 40, stm::BackendKind::kOrecSwiss);
  // The probe schedule guarantees at least one switch inside 40 rounds
  // (warmup 4, then candidate 1 becomes desired at round ~9).
  EXPECT_GE(run.switches, 1u);
  // Every task was one counter increment; four engines interleaved must
  // not lose or duplicate a single one.
  EXPECT_EQ(run.workload_total,
            static_cast<std::int64_t>(run.tasks_completed));
}

TEST(AdaptiveMonitor, AuditLogWithOnlineSwitchReplaysByteIdentically) {
  const AdaptiveRun run =
      run_adaptive_monitor("adaptive", 40, stm::BackendKind::kOrecSwiss);
  ASSERT_GE(run.switches, 1u) << "acceptance requires >= 1 online switch";
  std::size_t backend_rounds = 0;
  std::size_t switched_rounds = 0;
  std::set<std::string> desired_names;
  for (const auto& record : run.records) {
    if (!record.backend_valid) continue;
    ++backend_rounds;
    desired_names.insert(record.backend);
    if (record.backend_switched) ++switched_rounds;
  }
  EXPECT_GT(backend_rounds, 0u);
  EXPECT_GE(switched_rounds, 1u);
  EXPECT_GT(desired_names.size(), 1u)
      << "probing must walk through multiple backends";

  // Serialize -> parse -> byte-identical re-serialize.
  const std::string text = telemetry::to_jsonl(run.meta, run.records);
  telemetry::AuditMeta parsed_meta;
  std::vector<telemetry::AuditRecord> parsed;
  std::string error;
  ASSERT_TRUE(telemetry::parse_audit(text, &parsed_meta, &parsed, &error))
      << error;
  EXPECT_EQ(telemetry::to_jsonl(parsed_meta, parsed), text);

  // Replay: every level decision AND every desired-backend answer must be
  // re-derived exactly from the recorded signals.
  const telemetry::ReplayResult result =
      telemetry::replay_audit(parsed_meta, parsed);
  EXPECT_TRUE(result.ok) << telemetry::explain_replay(parsed_meta, result);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.rounds, run.records.size());
}

TEST(AdaptiveMonitor, TelemetryLabelsFollowTheActiveBackend) {
  telemetry::Armed armed;
  const AdaptiveRun run =
      run_adaptive_monitor("adaptive", 40, stm::BackendKind::kOrecSwiss);
  ASSERT_GE(run.switches, 1u);
  telemetry::Registry& reg = telemetry::registry();
  // Commits must have accumulated under at least two distinct backend
  // labels — the per-backend telemetry seam follows the switch.
  int labelled_backends = 0;
  for (const auto kind : stm::known_backends()) {
    const auto commits =
        reg.counter("rubic_stm_commits_total",
                    {{"backend", std::string(stm::backend_name(kind))}})
            .value();
    if (commits > 0) ++labelled_backends;
  }
  EXPECT_GE(labelled_backends, 2);
  EXPECT_GE(reg.counter("rubic_backend_switches_total").value(),
            run.switches);
}

TEST(AdaptiveMonitor, SurvivesAFaultStormMidAdaptation) {
  // Controller throws, worker stalls and forced commit conflicts all armed
  // while the adaptive schedule is walking the engines: the run must
  // complete, stay lossless, and still make progress every round.
  fault::arm(*fault::Plan::parse("seed=11;controller_throw:prob=0.2;"
                                 "worker_stall:us=100,prob=0.05;"
                                 "stm_conflict:prob=0.02")
                  .release());
  const AdaptiveRun run =
      run_adaptive_monitor("adaptive:ebs", 48, stm::BackendKind::kNorec);
  fault::disarm();
  EXPECT_EQ(run.workload_total,
            static_cast<std::int64_t>(run.tasks_completed));
  // Switching is best-effort under the storm, but the schedule retries
  // every round, and absorbed controller throws must not kill the monitor.
  EXPECT_GE(run.records.size(), 48u);
}

}  // namespace
}  // namespace rubic

// STM edge cases: orec aliasing (two addresses sharing one ownership
// record), timestamp extension, abort-cause accounting, small-type TVars,
// misuse crashes, and torn-state probes that the basic suite doesn't reach.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/util/rng.hpp"

namespace rubic::stm {
namespace {

// Finds two distinct word slots in `pool` that alias to the same orec.
// The Fibonacci multiply-shift hash is so equidistributive that random
// probing virtually never collides within one allocation; instead we use a
// known property of the golden-ratio constant: stripe offsets equal to a
// Fibonacci number map K·d very close to a multiple of 2^64, so
// bucket(s) == bucket(s + d) for ~91% of bases when d = 514229 (F(29)).
// We still verify via for_address (no dependence on hash internals).
constexpr std::size_t kAliasStride = 514229;

std::pair<std::uint64_t*, std::uint64_t*> find_alias(
    Runtime& rt, std::vector<std::uint64_t>& pool) {
  RUBIC_CHECK(pool.size() > kAliasStride + 2048);
  for (std::size_t base = 0; base < 2048; ++base) {
    std::uint64_t* a = &pool[base];
    std::uint64_t* b = &pool[base + kAliasStride];
    if (&rt.orecs().for_address(a) == &rt.orecs().for_address(b)) {
      return {a, b};
    }
  }
  return {nullptr, nullptr};
}

TEST(StmAliasing, ReadThroughOwnLockedStripeSeesPreImage) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  std::vector<std::uint64_t> pool(kAliasStride + 4096, 0);
  auto [a, b] = find_alias(rt, pool);
  if (a == nullptr) GTEST_SKIP() << "no orec alias in pool";
  *a = 11;
  *b = 22;
  atomically(ctx, [&](Txn& tx) {
    tx.write_word(a, 100);  // locks the shared orec
    // Reading the *other* address of the same stripe must return the
    // memory value (22), not the buffered write for `a`.
    EXPECT_EQ(tx.read_word(b), 22u);
    EXPECT_EQ(tx.read_word(a), 100u) << "read-own-write through the buffer";
  });
  EXPECT_EQ(*a, 100u);
  EXPECT_EQ(*b, 22u);
}

TEST(StmAliasing, AliasedWritesBothCommit) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  std::vector<std::uint64_t> pool(kAliasStride + 4096, 0);
  auto [a, b] = find_alias(rt, pool);
  if (a == nullptr) GTEST_SKIP() << "no orec alias in pool";
  atomically(ctx, [&](Txn& tx) {
    tx.write_word(a, 1);
    tx.write_word(b, 2);  // same orec, second write must not re-lock
  });
  EXPECT_EQ(*a, 1u);
  EXPECT_EQ(*b, 2u);
  const Orec& orec = rt.orecs().for_address(a);
  EXPECT_FALSE(is_locked(orec.load()));
}

// Several tests below drive hand-rolled lock-step interleavings that only
// make sense for specific protocol families; they skip on engines whose
// semantics differ by design (TL2 never extends; the eager 2plundo engine
// holds reads locked, so a lock-step foreign writer would spin forever).
bool default_backend_is(BackendKind k) { return RuntimeConfig{}.backend == k; }

TEST(StmExtension, ReadAfterForeignCommitExtends) {
  // A transaction that starts, then reads data committed *after* its start
  // timestamp, must extend (not abort) when its prior reads are untouched.
  if (default_backend_is(BackendKind::kTl2) ||
      default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "timestamp extension exists only on orec_swiss/norec";
  }
  Runtime rt;
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(1), y(2);

  reader.begin(true);
  Txn rtx(reader);
  EXPECT_EQ(x.read(rtx), 1);

  // Foreign commit bumps the clock past the reader's rv.
  atomically(writer, [&](Txn& tx) { y.write(tx, 20); });

  // y's version is now > rv; the read triggers an extension that validates
  // x and succeeds.
  EXPECT_EQ(y.read(rtx), 20);
  reader.commit();
  EXPECT_EQ(snapshot(reader.stats()).extensions, 1u);
  EXPECT_EQ(snapshot(reader.stats()).commits, 1u);
}

TEST(StmExtension, ExtensionFailsWhenPriorReadIsStale) {
  if (default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "the reader's lock would block the lock-step writer";
  }
  Runtime rt;
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(1), y(2);

  reader.begin(true);
  Txn rtx(reader);
  EXPECT_EQ(x.read(rtx), 1);

  // Foreign commit modifies BOTH x (invalidating the prior read) and y.
  atomically(writer, [&](Txn& tx) {
    x.write(tx, 10);
    y.write(tx, 20);
  });

  EXPECT_THROW((void)y.read(rtx), detail::AbortTx);
  reader.rollback(AbortCause::kValidationFailed);
  EXPECT_EQ(snapshot(reader.stats())
                .aborts[static_cast<std::size_t>(AbortCause::kValidationFailed)],
            1u);
}

TEST(StmAbortCauses, CountedPerCause) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  int attempts = 0;
  atomically(ctx, [&](Txn& tx) {
    if (++attempts < 3) tx.retry();
  });
  const auto stats = snapshot(ctx.stats());
  EXPECT_EQ(stats.aborts[static_cast<std::size_t>(AbortCause::kUserRetry)], 2u);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(attempts, 3);
}

TEST(StmSmallTypes, TVarHoldsVariousValueTypes) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  TVar<bool> flag(false);
  TVar<double> ratio(0.25);
  TVar<std::int8_t> tiny(-5);
  TVar<std::uint32_t> medium(0xdeadbeef);
  struct Pair {
    std::int32_t a, b;
  };
  TVar<Pair> pair(Pair{1, -2});
  atomically(ctx, [&](Txn& tx) {
    EXPECT_FALSE(flag.read(tx));
    flag.write(tx, true);
    EXPECT_DOUBLE_EQ(ratio.read(tx), 0.25);
    ratio.write(tx, 0.75);
    EXPECT_EQ(tiny.read(tx), -5);
    tiny.write(tx, 7);
    EXPECT_EQ(medium.read(tx), 0xdeadbeefu);
    const Pair p = pair.read(tx);
    EXPECT_EQ(p.a, 1);
    EXPECT_EQ(p.b, -2);
    pair.write(tx, Pair{3, 4});
  });
  EXPECT_TRUE(flag.unsafe_read());
  EXPECT_DOUBLE_EQ(ratio.unsafe_read(), 0.75);
  EXPECT_EQ(tiny.unsafe_read(), 7);
  EXPECT_EQ(pair.unsafe_read().a, 3);
}

TEST(StmMisuse, AccessOutsideTransactionAborts) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  std::uint64_t word = 0;
  EXPECT_DEATH((void)ctx.read_word(&word), "outside a transaction");
  EXPECT_DEATH(ctx.write_word(&word, 1), "outside a transaction");
}

TEST(StmMisuse, UnalignedAccessAborts) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  alignas(8) char buffer[16] = {};
  auto* unaligned = reinterpret_cast<std::uint64_t*>(buffer + 1);
  ctx.begin(true);
  EXPECT_DEATH((void)ctx.read_word(unaligned), "aligned");
  ctx.rollback(AbortCause::kUserRetry);
}

TEST(StmMisuse, DoubleBeginAborts) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  ctx.begin(true);
  EXPECT_DEATH(ctx.begin(true), "already running");
  ctx.rollback(AbortCause::kUserRetry);
}

TEST(StmFree, NullFreeIsNoop) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  atomically(ctx, [&](Txn& tx) { tx.free(nullptr); });
  EXPECT_EQ(rt.limbo_size(), 0u);
}

TEST(StmFree, AllocThenFreeInSameTxnCommits) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  atomically(ctx, [&](Txn& tx) {
    auto* p = tx.make<std::int64_t>(7);
    tx.free(p);  // allocated and retired in one transaction
  });
  rt.try_advance_epoch(ctx);
  rt.try_advance_epoch(ctx);
  EXPECT_EQ(rt.limbo_size(), 0u);
}

TEST(StmWriteSet, LargeWriteSetCommitsAtomically) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  std::vector<TVar<std::int64_t>> vars(5000);
  atomically(ctx, [&](Txn& tx) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      vars[i].write(tx, static_cast<std::int64_t>(i));
    }
  });
  for (std::size_t i = 0; i < vars.size(); ++i) {
    EXPECT_EQ(vars[i].unsafe_read(), static_cast<std::int64_t>(i));
  }
}

TEST(StmWriteSet, RepeatedWritesToSameWordKeepLast) {
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kOrecSwiss;  // asserts orec clock accounting
  Runtime rt(cfg);
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  atomically(ctx, [&](Txn& tx) {
    for (int i = 1; i <= 100; ++i) x.write(tx, i);
    EXPECT_EQ(x.read(tx), 100);
  });
  EXPECT_EQ(x.unsafe_read(), 100);
  EXPECT_EQ(rt.clock().load(), 1u) << "one commit, one clock tick";
}

TEST(StmCommitTime, WritesDoNotLockUntilCommit) {
  if (default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "2plundo is eager by definition";
  }
  RuntimeConfig cfg;
  cfg.lock_timing = LockTiming::kCommitTime;
  Runtime rt(cfg);
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  const Orec& orec = rt.orecs().for_address(&x);
  ctx.begin(true);
  Txn tx(ctx);
  x.write(tx, 42);
  EXPECT_FALSE(is_locked(orec.load()))
      << "commit-time mode must not acquire locks at encounter";
  EXPECT_EQ(x.read(tx), 42) << "read-own-write through the buffer";
  EXPECT_EQ(x.unsafe_read(), 0);
  ctx.commit();
  EXPECT_FALSE(is_locked(orec.load()));
  EXPECT_EQ(x.unsafe_read(), 42);
}

TEST(StmCommitTime, CommitDetectsInterveningWriter) {
  if (default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "A's read lock would block B; 2PL prevents the race";
  }
  RuntimeConfig cfg;
  cfg.lock_timing = LockTiming::kCommitTime;
  Runtime rt(cfg);
  TxnDesc& a = rt.register_thread();
  TxnDesc& b = rt.register_thread();
  TVar<std::int64_t> x(0);

  // A reads x then buffers a write; B commits to x in between; A's commit
  // must fail validation instead of publishing a lost update.
  a.begin(true);
  Txn atx(a);
  const auto seen = x.read(atx);
  x.write(atx, seen + 1);

  atomically(b, [&](Txn& tx) { x.write(tx, 100); });

  EXPECT_THROW(a.commit(), detail::AbortTx);
  a.rollback(AbortCause::kValidationFailed);
  EXPECT_EQ(x.unsafe_read(), 100) << "B's commit must survive";
}

TEST(StmCommitTime, BlindWritesCommute) {
  // Without reading, two buffered writers to the same word serialize
  // cleanly — the later committer simply overwrites (no validation entry).
  if (default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "A's write lock would block B; no buffering to test";
  }
  RuntimeConfig cfg;
  cfg.lock_timing = LockTiming::kCommitTime;
  Runtime rt(cfg);
  TxnDesc& a = rt.register_thread();
  TxnDesc& b = rt.register_thread();
  TVar<std::int64_t> x(0);
  a.begin(true);
  Txn atx(a);
  x.write(atx, 1);
  atomically(b, [&](Txn& tx) { x.write(tx, 2); });
  a.commit();  // blind write: validation has nothing to check
  EXPECT_EQ(x.unsafe_read(), 1) << "A serialized after B";
}

TEST(StmClock, ReadOnlySnapshotIgnoresLaterCommits) {
  // Opacity probe: a read-only transaction that began before a writer
  // committed must observe either the full pre-state or abort — never a
  // mix. Single-threaded deterministic version of the bank test.
  if (default_backend_is(BackendKind::k2plUndo)) {
    GTEST_SKIP() << "the reader's locks block the writer: 2PL gives the "
                    "property by mutual exclusion, not snapshots";
  }
  Runtime rt;
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> a(1), b(1);

  reader.begin(true);
  Txn rtx(reader);
  const auto first = a.read(rtx);

  atomically(writer, [&](Txn& tx) {
    a.write(tx, 2);
    b.write(tx, 2);
  });

  // The second read must not silently pair new-b with old-a.
  try {
    const auto second = b.read(rtx);
    EXPECT_EQ(first, second) << "torn snapshot escaped validation";
    reader.commit();
  } catch (const detail::AbortTx&) {
    reader.rollback(AbortCause::kValidationFailed);  // also acceptable
  }
}

}  // namespace
}  // namespace rubic::stm

// Single-threaded unit tests of the STM machinery: lock-word encoding,
// write-set semantics, commit/abort behaviour, read-own-writes, the version
// clock, transactional allocation, and the epoch reclaimer's bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/stm/stm.hpp"

namespace rubic::stm {
namespace {

TEST(OrecEncoding, VersionRoundTrip) {
  for (std::uint64_t ts : {0ull, 1ull, 42ull, (1ull << 60)}) {
    const LockWord w = make_version(ts);
    EXPECT_FALSE(is_locked(w));
    EXPECT_EQ(version_of(w), ts);
  }
}

TEST(OrecEncoding, LockRoundTrip) {
  Runtime rt;
  TxnDesc& ctx = rt.register_thread();
  const LockWord w = make_lock(&ctx);
  EXPECT_TRUE(is_locked(w));
  EXPECT_EQ(owner_of(w), &ctx);
}

TEST(OrecTable, StableAndWordGranular) {
  OrecTable table;
  std::uint64_t a = 0, b = 0;
  EXPECT_EQ(&table.for_address(&a), &table.for_address(&a));
  // Distinct stripes virtually never alias in a 2^20-entry table.
  EXPECT_NE(&table.for_address(&a), &table.for_address(&b));
}

TEST(WriteSet, PutFindUpdate) {
  WriteSet ws;
  std::uint64_t a = 0, b = 0;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);
  ws.put(&a, 1);
  ws.put(&b, 2);
  ASSERT_NE(ws.find(&a), nullptr);
  EXPECT_EQ(ws.find(&a)->value, 1u);
  ws.put(&a, 3);  // update, not duplicate
  EXPECT_EQ(ws.size(), 2u);
  EXPECT_EQ(ws.find(&a)->value, 3u);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.find(&a), nullptr);
}

TEST(WriteSet, GrowsPastInitialBuckets) {
  WriteSet ws;
  std::vector<std::uint64_t> words(1000);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.put(&words[i], i);
  }
  EXPECT_EQ(ws.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    ASSERT_NE(ws.find(&words[i]), nullptr);
    EXPECT_EQ(ws.find(&words[i])->value, i);
  }
}

TEST(WriteSet, GenerationClearIsolatesTransactions) {
  WriteSet ws;
  std::uint64_t a = 0;
  for (int txn = 0; txn < 100; ++txn) {
    EXPECT_EQ(ws.find(&a), nullptr) << "stale entry leaked into txn " << txn;
    ws.put(&a, static_cast<std::uint64_t>(txn));
    ws.clear();
  }
}

// The fixture runs on the process-default backend (RUBIC_STM_BACKEND), so
// CI replays the whole file against NOrec; tests asserting orec-specific
// mechanics (clock ticks, published orec versions) pin the backend instead.
RuntimeConfig orec_pinned() {
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kOrecSwiss;
  return cfg;
}

class StmTest : public ::testing::Test {
 protected:
  Runtime rt_;
  TxnDesc& ctx_ = rt_.register_thread();
};

TEST_F(StmTest, ReadWriteCommit) {
  TVar<std::int64_t> x(10);
  atomically(ctx_, [&](Txn& tx) {
    EXPECT_EQ(x.read(tx), 10);
    x.write(tx, 20);
    EXPECT_EQ(x.read(tx), 20) << "read-own-writes must see the buffer";
  });
  EXPECT_EQ(x.unsafe_read(), 20);
  const auto stats = rt_.aggregate_stats();
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(stats.total_aborts(), 0u);
}

TEST_F(StmTest, WriteVisibilityMatchesEngineFamily) {
  // Write-back engines must defer publication until commit; the eager
  // 2plundo engine writes in place under its write lock (and is covered by
  // the undo-restore assertions elsewhere).
  const bool eager = rt_.backend() == BackendKind::k2plUndo;
  TVar<std::int64_t> x(1);
  atomically(ctx_, [&](Txn& tx) {
    x.write(tx, 2);
    EXPECT_EQ(x.unsafe_read(), eager ? 2 : 1);
  });
  EXPECT_EQ(x.unsafe_read(), 2);
}

TEST_F(StmTest, UserExceptionRollsBackAndPropagates) {
  TVar<std::int64_t> x(5);
  EXPECT_THROW(atomically(ctx_,
                          [&](Txn& tx) {
                            x.write(tx, 99);
                            throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  EXPECT_EQ(x.unsafe_read(), 5) << "aborted writes must not reach memory";
  EXPECT_FALSE(ctx_.active());
}

TEST_F(StmTest, ReturnsBodyValue) {
  TVar<std::int64_t> x(21);
  const std::int64_t doubled = atomically(ctx_, [&](Txn& tx) {
    const auto v = x.read(tx);
    x.write(tx, v * 2);
    return v * 2;
  });
  EXPECT_EQ(doubled, 42);
  EXPECT_EQ(x.unsafe_read(), 42);
}

TEST_F(StmTest, FlatNestingJoinsOuterTransaction) {
  const bool eager = rt_.backend() == BackendKind::k2plUndo;
  TVar<std::int64_t> x(0);
  atomically(ctx_, [&](Txn&) {
    atomically(ctx_, [&](Txn& inner) { x.write(inner, 7); });
    // The inner "transaction" must not have committed independently: the
    // write-back engines still hold it in the buffer; the eager engine has
    // stored it but still owns the write lock (an independent commit would
    // have released it and bumped the commit counter, checked below).
    EXPECT_EQ(x.unsafe_read(), eager ? 7 : 0);
  });
  EXPECT_EQ(x.unsafe_read(), 7);
  EXPECT_EQ(rt_.aggregate_stats().commits, 1u);
}

TEST_F(StmTest, ReadOnlyCommitSkipsClock) {
  TVar<std::int64_t> x(3);
  const std::uint64_t before = rt_.clock().load();
  atomically(ctx_, [&](Txn& tx) { (void)x.read(tx); });
  EXPECT_EQ(rt_.clock().load(), before);
  EXPECT_EQ(rt_.aggregate_stats().read_only_commits, 1u);
}

TEST(StmOrec, WritingCommitAdvancesClock) {
  Runtime rt(orec_pinned());
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(3);
  const std::uint64_t before = rt.clock().load();
  atomically(ctx, [&](Txn& tx) { x.write(tx, 4); });
  EXPECT_EQ(rt.clock().load(), before + 1);
}

TEST(StmOrec, VersionsPublishedAtCommitTimestamp) {
  Runtime rt(orec_pinned());
  TxnDesc& ctx = rt.register_thread();
  TVar<std::int64_t> x(0);
  atomically(ctx, [&](Txn& tx) { x.write(tx, 1); });
  const std::uint64_t wv = rt.clock().load();
  const Orec& o = rt.orecs().for_address(&x);
  EXPECT_FALSE(is_locked(o.load()));
  EXPECT_EQ(version_of(o.load()), wv);
}

TEST_F(StmTest, TxMakeSurvivesCommit) {
  struct Node {
    std::int64_t value;
  };
  Node* made = nullptr;
  atomically(ctx_, [&](Txn& tx) {
    made = tx.make<Node>(Node{77});
  });
  ASSERT_NE(made, nullptr);
  EXPECT_EQ(made->value, 77);
  ::operator delete(made);  // committed allocations are ordinary heap memory
}

TEST_F(StmTest, TxMakeReclaimedOnUserException) {
  struct Node {
    std::int64_t value;
  };
  // The allocation is freed during rollback; absence of leaks is verified by
  // ASAN builds, here we only check control flow.
  EXPECT_THROW(atomically(ctx_,
                          [&](Txn& tx) {
                            (void)tx.make<Node>(Node{1});
                            throw std::logic_error("abort");
                          }),
               std::logic_error);
  EXPECT_FALSE(ctx_.active());
}

TEST_F(StmTest, TxFreeDeferredToEpoch) {
  auto* victim = new std::uint64_t(0);
  atomically(ctx_, [&](Txn& tx) { tx.free(victim); });
  // The free is queued, not executed: with only this quiescent thread the
  // epoch can advance on demand.
  EXPECT_EQ(rt_.limbo_size(), 1u);
  rt_.try_advance_epoch(ctx_);
  rt_.try_advance_epoch(ctx_);
  EXPECT_EQ(rt_.limbo_size(), 0u);
}

TEST_F(StmTest, TxFreeCancelledOnAbort) {
  auto* survivor = new std::uint64_t(123);
  EXPECT_THROW(atomically(ctx_,
                          [&](Txn& tx) {
                            tx.free(survivor);
                            throw std::runtime_error("no");
                          }),
               std::runtime_error);
  EXPECT_EQ(rt_.limbo_size(), 0u);
  EXPECT_EQ(*survivor, 123u) << "freed-by-aborted-txn memory must survive";
  delete survivor;
}

TEST_F(StmTest, MaxRetriesThrows) {
  RuntimeConfig cfg;
  cfg.max_retries = 3;
  Runtime limited(cfg);
  TxnDesc& ctx = limited.register_thread();
  int attempts = 0;
  EXPECT_THROW(atomically(ctx,
                          [&](Txn& tx) {
                            ++attempts;
                            tx.retry();  // always abort
                          }),
               RetriesExhausted);
  EXPECT_EQ(attempts, 3);
}

TEST_F(StmTest, StatsCountReadsAndWrites) {
  TVar<std::int64_t> x(0), y(0);
  atomically(ctx_, [&](Txn& tx) {
    (void)x.read(tx);
    (void)y.read(tx);
    x.write(tx, 1);
  });
  const auto s = rt_.aggregate_stats();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
}

TEST_F(StmTest, GlobalRuntimeSingleton) {
  Runtime& a = global_runtime();
  Runtime& b = global_runtime();
  EXPECT_EQ(&a, &b);
}

TEST(StmEpoch, AdvanceBlockedByActiveTxn) {
  Runtime rt;
  TxnDesc& busy = rt.register_thread();
  TxnDesc& idle = rt.register_thread();
  busy.begin(true);
  const std::uint64_t e0 = rt.current_epoch();
  // busy entered epoch e0; idle cannot advance past it.
  rt.try_advance_epoch(idle);
  const std::uint64_t e1 = rt.current_epoch();
  EXPECT_LE(e1, e0 + 1);
  rt.try_advance_epoch(idle);
  EXPECT_EQ(rt.current_epoch(), e1) << "epoch must stall behind active txn";
  busy.rollback(AbortCause::kUserRetry);
  rt.try_advance_epoch(idle);
  EXPECT_GT(rt.current_epoch(), e1);
}

}  // namespace
}  // namespace rubic::stm

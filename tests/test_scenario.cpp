// Scenario soak layer (src/scenario/): spec grammar accept/reject,
// fault-schedule determinism from the top-level seed, every invariant
// class firing on synthetic inputs, the hung-child watchdog, telemetry
// part accounting, and two end-to-end engine runs — a kill plus
// freeze/thaw timeline that must pass, and a zero-sum tamper that must
// fail with the verified invariant named.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>

#include "src/fault/fault.hpp"
#include "src/scenario/engine.hpp"
#include "src/scenario/invariant.hpp"
#include "src/scenario/launcher.hpp"
#include "src/scenario/spec.hpp"
#include "src/trace/trace.hpp"

namespace {

using namespace rubic;
using namespace std::chrono;

std::string unique_tag(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string(tag) + "-" + std::to_string(static_cast<int>(getpid())) +
         "-" + std::to_string(counter.fetch_add(1));
}

// ---------------------------------------------------------------------------
// Spec parsing.

constexpr const char* kFullSpec = R"(# full grammar round-trip
name = full
seed = 42
seconds = 12
contexts = 4
pool = 8
period_ms = 5
tick_ms = 100
hung_after_ms = 3000

[process web]
workload = traffic:mix=ycsb-b;curve=constant:rate=200,seconds=8
policy = rubic
backend = norec
fault_spec = monitor_stall:ms=10,every=16
start_ms = 0
stop_ms = 9000

[process batch]
workload = rbset
policy = greedy
start_ms = 1000

[trouble]
at_ms = 3000
kind = freeze
target = batch

[trouble]
at_ms = 5000
kind = thaw
target = batch

[trouble]
at_ms = 7000
kind = kill
target = batch

[invariant verified]

[invariant liveness]
grace_ms = 1500

[invariant slo_floor]
min = 0.25
phase = steady

[invariant jain_min]
min = 0.4

[invariant counter_max]
metric = rubic_monitor_sanitized_samples_total
max = 10

[invariant counter_min]
metric = rubic_stm_commits_total
min = 1
)";

TEST(ScenarioSpec, ParsesFullGrammar) {
  const scenario::ScenarioSpec spec = scenario::parse_scenario(kFullSpec);
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.seconds, 12);
  EXPECT_EQ(spec.contexts, 4);
  EXPECT_EQ(spec.pool, 8);
  EXPECT_EQ(spec.period_ms, 5);
  EXPECT_EQ(spec.tick_ms, 100);
  EXPECT_EQ(spec.hung_after_ms, 3000);

  ASSERT_EQ(spec.processes.size(), 2u);
  EXPECT_EQ(spec.processes[0].name, "web");
  EXPECT_EQ(spec.processes[0].backend, stm::BackendKind::kNorec);
  EXPECT_EQ(spec.processes[0].stop_ms, 9000);
  EXPECT_EQ(spec.effective_stop_ms(spec.processes[0]), 9000);
  EXPECT_EQ(spec.processes[1].policy, "greedy");
  EXPECT_EQ(spec.effective_stop_ms(spec.processes[1]), 12000);

  ASSERT_EQ(spec.troubles.size(), 3u);
  EXPECT_EQ(spec.troubles[0].kind, scenario::TroubleKind::kFreeze);
  EXPECT_EQ(spec.troubles[1].kind, scenario::TroubleKind::kThaw);
  EXPECT_EQ(spec.troubles[2].kind, scenario::TroubleKind::kKill);

  ASSERT_EQ(spec.invariants.size(), 6u);
  EXPECT_EQ(spec.invariants[0].kind, scenario::InvariantKind::kVerified);
  EXPECT_EQ(spec.invariants[1].grace_ms, 1500);
  EXPECT_EQ(spec.invariants[2].phase, "steady");
  EXPECT_DOUBLE_EQ(spec.invariants[3].min, 0.4);
  EXPECT_EQ(spec.invariants[4].metric,
            "rubic_monitor_sanitized_samples_total");
  EXPECT_DOUBLE_EQ(spec.invariants[5].min, 1.0);
}

TEST(ScenarioSpec, RejectsMalformedSpecs) {
  const auto rejects = [](const std::string& text) {
    EXPECT_THROW(scenario::parse_scenario(text), std::invalid_argument)
        << text;
  };
  rejects("");                                    // no processes
  rejects("bogus_key = 1\n[process a]\nworkload = rbset\n");
  rejects("[bogus_section]\n");
  rejects("[process a]\nworkload = rbset\nbogus = 1\n");
  rejects("[process a]\nworkload = rbset\nstart_ms = soon\n");  // bad number
  rejects("[process a]\n");                       // missing workload
  rejects("[process a]\nworkload = rbset\n[process a]\nworkload = rbset\n");
  rejects("[process a]\nworkload = rbset\nbackend = tl3\n");
  rejects("seconds = 5\n[process a]\nworkload = rbset\n"
          "start_ms = 2000\nstop_ms = 1000\n");   // departs before arrival
  rejects("[process a]\nworkload = rbset\n"
          "[trouble]\nat_ms = 1\nkind = kill\ntarget = ghost\n");
  rejects("[process a]\nworkload = rbset\n"
          "[trouble]\nat_ms = 1\nkind = melt\ntarget = a\n");
  rejects("[process a]\nworkload = rbset\n"
          "[trouble]\nat_ms = 1\nkind = thaw\ntarget = a\n");  // no freeze
  rejects("[process a]\nworkload = rbset\n[invariant bogus]\n");
  rejects("[process a]\nworkload = rbset\n[invariant slo_floor]\nmin = 2\n");
  rejects("[process a]\nworkload = rbset\n[invariant counter_max]\nmax = 1\n");
  rejects("[process a]\nworkload = rbset\n"
          "fault_spec = no_such_site:ms=1\n");    // validated at parse time
}

TEST(ScenarioSpec, UnknownFaultSiteErrorNamesKnownSites) {
  try {
    scenario::parse_scenario(
        "[process a]\nworkload = rbset\nfault_spec = no_such_site:ms=1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_site"), std::string::npos) << what;
    // The message quotes the registered list (the same names
    // --list-fault-sites prints).
    for (const std::string_view site : fault::known_site_names()) {
      EXPECT_NE(what.find(site), std::string::npos) << what << " / " << site;
    }
  }
}

TEST(ScenarioSpec, FaultScheduleIsDeterministicPerSeed) {
  const char* body =
      "[process a]\nworkload = rbset\nfault_spec = monitor_stall:ms=5\n"
      "[process b]\nworkload = rbset\nfault_spec = clock_jump:ns=100\n";
  const std::string text = std::string("seed = 9\n") + body;
  const scenario::ScenarioSpec one = scenario::parse_scenario(text);
  const scenario::ScenarioSpec two = scenario::parse_scenario(text);
  // Same spec + seed: byte-identical derived fault specs (the whole fault
  // schedule is a pure function of them).
  EXPECT_EQ(one.effective_fault_spec(0), two.effective_fault_spec(0));
  EXPECT_EQ(one.effective_fault_spec(1), two.effective_fault_spec(1));
  // Sibling processes arm different derived seeds.
  EXPECT_NE(one.effective_fault_spec(0), one.effective_fault_spec(1));
  // A spec that pins its own seed is passed through untouched.
  const scenario::ScenarioSpec pinned = scenario::parse_scenario(
      "[process a]\nworkload = rbset\n"
      "fault_spec = seed=123;monitor_stall:ms=5\n");
  EXPECT_EQ(pinned.effective_fault_spec(0), "seed=123;monitor_stall:ms=5");
  // And a different top-level seed derives a different schedule.
  const scenario::ScenarioSpec other =
      scenario::parse_scenario(std::string("seed = 10\n") + body);
  EXPECT_NE(one.effective_fault_spec(0), other.effective_fault_spec(0));
}

// ---------------------------------------------------------------------------
// Invariant evaluators on synthetic inputs: each class must fire.

scenario::ProcessExit clean_exit(const char* name, double rate) {
  scenario::ProcessExit e;
  e.name = name;
  e.started = true;
  e.clean_exit = true;
  e.completed_on_bus = true;
  e.tasks_per_second = rate;
  return e;
}

TEST(ScenarioInvariants, VerifiedFiresOnEveryFailureClass) {
  std::string detail;
  std::vector<scenario::ProcessExit> exits = {clean_exit("a", 100.0)};
  EXPECT_TRUE(scenario::eval_verified(exits, &detail));

  exits.push_back(clean_exit("chaos", 0.0));
  exits.back().chaos_killed = true;
  exits.back().clean_exit = false;  // SIGKILLed, but an expected casualty
  EXPECT_TRUE(scenario::eval_verified(exits, &detail));

  auto fails_with = [&exits](scenario::ProcessExit bad,
                             const char* needle) {
    std::string why;
    auto copy = exits;
    copy.push_back(std::move(bad));
    EXPECT_FALSE(scenario::eval_verified(copy, &why));
    EXPECT_NE(why.find(needle), std::string::npos) << why;
  };
  scenario::ProcessExit hung = clean_exit("wedged", 0.0);
  hung.hung = true;
  fails_with(hung, "hung");
  scenario::ProcessExit tampered = clean_exit("tampered", 0.0);
  tampered.clean_exit = false;
  tampered.verify_failed = true;
  fails_with(tampered, "verification");
  scenario::ProcessExit crashed = clean_exit("crashed", 0.0);
  crashed.clean_exit = false;
  fails_with(crashed, "clean exit");
}

telemetry::MetricSnapshot counter(const char* name, std::uint64_t value,
                                  telemetry::Labels labels = {}) {
  telemetry::MetricSnapshot m;
  m.name = name;
  m.labels = std::move(labels);
  m.type = telemetry::MetricType::kCounter;
  m.value_u64 = value;
  return m;
}

TEST(ScenarioInvariants, SloFloorJudgesPerPhaseAttainment) {
  telemetry::Snapshot snap;
  snap.metrics.push_back(counter("rubic_traffic_requests_total", 1000,
                                 {{"mix", "ycsb-b"}, {"phase", "steady"}}));
  snap.metrics.push_back(counter("rubic_traffic_slo_ok_total", 900,
                                 {{"mix", "ycsb-b"}, {"phase", "steady"}}));
  snap.metrics.push_back(counter("rubic_traffic_requests_total", 100,
                                 {{"mix", "ycsb-b"}, {"phase", "spike"}}));
  snap.metrics.push_back(counter("rubic_traffic_slo_ok_total", 10,
                                 {{"mix", "ycsb-b"}, {"phase", "spike"}}));

  scenario::Invariant floor;
  floor.kind = scenario::InvariantKind::kSloFloor;
  floor.min = 0.5;
  std::string detail;
  // The spike phase's 10% attainment breaks the all-phase floor...
  EXPECT_FALSE(scenario::eval_slo_floor(floor, snap, &detail));
  EXPECT_NE(detail.find("spike"), std::string::npos) << detail;
  // ...but the steady phase alone clears it.
  floor.phase = "steady";
  EXPECT_TRUE(scenario::eval_slo_floor(floor, snap, &detail));
  // A floor over metrics that do not exist fails loudly, not vacuously.
  floor.phase = "missing-phase";
  EXPECT_FALSE(scenario::eval_slo_floor(floor, snap, &detail));
  EXPECT_NE(detail.find("missing-phase"), std::string::npos) << detail;
}

TEST(ScenarioInvariants, JainMinFiresOnStarvation) {
  scenario::Invariant jain;
  jain.kind = scenario::InvariantKind::kJainMin;
  jain.min = 0.8;
  std::string detail;
  std::vector<scenario::ProcessExit> fair = {clean_exit("a", 100.0),
                                             clean_exit("b", 120.0)};
  EXPECT_TRUE(scenario::eval_jain_min(jain, fair, &detail));
  std::vector<scenario::ProcessExit> starved = {clean_exit("a", 100.0),
                                                clean_exit("b", 2.0)};
  EXPECT_FALSE(scenario::eval_jain_min(jain, starved, &detail));
  EXPECT_NE(detail.find("Jain"), std::string::npos) << detail;
  // Fewer than two completed processes: fairness is trivially satisfied.
  std::vector<scenario::ProcessExit> solo = {clean_exit("a", 100.0)};
  EXPECT_TRUE(scenario::eval_jain_min(jain, solo, &detail));
}

TEST(ScenarioInvariants, CounterBoundsFireBothWays) {
  telemetry::Snapshot snap;
  snap.metrics.push_back(
      counter("rubic_stm_aborts_total", 40, {{"cause", "conflict"}}));
  snap.metrics.push_back(
      counter("rubic_stm_aborts_total", 5, {{"cause", "fault"}}));

  scenario::Invariant bound;
  bound.kind = scenario::InvariantKind::kCounterMax;
  bound.metric = "rubic_stm_aborts_total";
  bound.max = 100.0;
  std::string detail;
  EXPECT_TRUE(scenario::eval_counter_bound(bound, snap, &detail));
  bound.max = 10.0;  // sums both label sets: 45 > 10
  EXPECT_FALSE(scenario::eval_counter_bound(bound, snap, &detail));
  bound.label_key = "cause";
  bound.label_value = "fault";  // filtered sum: 5 <= 10
  EXPECT_TRUE(scenario::eval_counter_bound(bound, snap, &detail));

  scenario::Invariant need;
  need.kind = scenario::InvariantKind::kCounterMin;
  need.metric = "rubic_stm_aborts_total";
  need.min = 50.0;
  EXPECT_FALSE(scenario::eval_counter_bound(need, snap, &detail));
  need.min = 45.0;
  EXPECT_TRUE(scenario::eval_counter_bound(need, snap, &detail));
  // An absent counter with a positive floor fails and says "absent".
  need.metric = "rubic_never_emitted_total";
  need.min = 1.0;
  EXPECT_FALSE(scenario::eval_counter_bound(need, snap, &detail));
  EXPECT_NE(detail.find("absent"), std::string::npos) << detail;
  // An absent counter trivially satisfies any upper bound.
  bound.metric = "rubic_never_emitted_total";
  bound.label_key.clear();
  EXPECT_TRUE(scenario::eval_counter_bound(bound, snap, &detail));
}

// ---------------------------------------------------------------------------
// Hung-child watchdog.

TEST(ScenarioLauncher, WatchdogKillsHungChildAndNamesIt) {
  // A child that blocks forever: no bus slot, no exit. The watchdog must
  // SIGKILL it once the (already expired) deadline passes and report
  // hung=true rather than blocking this test forever.
  const pid_t pid = scenario::spawn_child([]() {
    for (;;) pause();
    return 0;
  });
  ASSERT_GT(pid, 0);
  std::vector<scenario::WatchedChild> watched = {
      {pid, steady_clock::now() - milliseconds(1)}};
  const auto reaped =
      scenario::reap_with_watchdog(watched, nullptr, milliseconds(50));
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_TRUE(reaped[0].hung);
  EXPECT_EQ(reaped[0].signal, SIGKILL);
}

TEST(ScenarioLauncher, WatchdogLeavesPromptExitsAlone) {
  const pid_t pid = scenario::spawn_child([]() { return 7; });
  ASSERT_GT(pid, 0);
  std::vector<scenario::WatchedChild> watched = {
      {pid, steady_clock::now() + seconds(30)}};
  const auto reaped =
      scenario::reap_with_watchdog(watched, nullptr, milliseconds(50));
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_FALSE(reaped[0].hung);
  EXPECT_EQ(reaped[0].exit_code, 7);
  EXPECT_EQ(reaped[0].signal, 0);
}

// ---------------------------------------------------------------------------
// Telemetry part accounting.

TEST(ScenarioLauncher, TelemetryPartAccountingCoversEveryFate) {
  const std::string base = unique_tag("parts");
  // A valid part: an (empty) registry snapshot round-trips the schema.
  const std::string good = scenario::part_path(base, 1, ".tpart");
  ASSERT_TRUE(trace::write_file(
      good, telemetry::to_json(telemetry::Snapshot{},
                               telemetry::JsonStyle::kCompact)));
  // A torn part: killed mid-write.
  const std::string torn = scenario::part_path(base, 2, ".tpart");
  ASSERT_TRUE(trace::write_file(torn, "{\"schema\": \"rubic-telem"));
  // pid 3's part is missing entirely.
  const auto collected = scenario::collect_telemetry_parts(
      {{1, good}, {2, torn}, {3, scenario::part_path(base, 3, ".tpart")}});
  EXPECT_EQ(collected.expected, 3);
  EXPECT_EQ(collected.merged, 1);
  EXPECT_EQ(collected.discarded, 1);
  EXPECT_EQ(collected.missing, 1);
  ASSERT_EQ(collected.snapshots.size(), 1u);
  EXPECT_EQ(collected.snapshots[0].first, 1);
  // Parts are consumed: a second collection finds nothing.
  const auto again = scenario::collect_telemetry_parts({{1, good}});
  EXPECT_EQ(again.missing, 1);
}

// ---------------------------------------------------------------------------
// End-to-end engine runs.

scenario::EngineOptions quiet_options(const char* tag) {
  scenario::EngineOptions opt;
  opt.bus_name = "/" + unique_tag(tag);
  opt.part_base = unique_tag(tag);
  opt.echo_child_stderr = false;
  return opt;
}

TEST(ScenarioEngine, KillAndFreezeThawTimelinePasses) {
  const char* text =
      "name = e2e-chaos\n"
      "seed = 11\n"
      "seconds = 5\n"
      "contexts = 2\n"
      "pool = 4\n"
      "tick_ms = 100\n"
      "hung_after_ms = 20000\n"
      "[process survivor]\nworkload = rbset\nstart_ms = 0\n"
      "[process victim]\nworkload = rbset\nstart_ms = 0\n"
      "[process sleeper]\nworkload = rbset\nstart_ms = 500\n"
      "[trouble]\nat_ms = 1200\nkind = kill\ntarget = victim\n"
      "[trouble]\nat_ms = 1500\nkind = freeze\ntarget = sleeper\n"
      "[trouble]\nat_ms = 2500\nkind = thaw\ntarget = sleeper\n"
      "[invariant verified]\n"
      "[invariant liveness]\ngrace_ms = 3000\n";
  const scenario::ScenarioSpec spec = scenario::parse_scenario(text);
  const scenario::RunResult result =
      scenario::run_scenario(spec, quiet_options("e2e"));

  EXPECT_TRUE(result.passed);
  ASSERT_EQ(result.processes.size(), 3u);
  EXPECT_EQ(result.processes[0].outcome, "completed");
  EXPECT_EQ(result.processes[1].outcome, "chaos-killed");
  EXPECT_EQ(result.processes[2].outcome, "completed");
  for (const scenario::TroubleOutcome& trouble : result.troubles) {
    EXPECT_TRUE(trouble.delivered);
    EXPECT_GE(trouble.applied_at_ms, trouble.spec.at_ms);
  }
  for (const scenario::InvariantVerdict& verdict : result.verdicts) {
    EXPECT_TRUE(verdict.passed) << verdict.detail;
  }
  EXPECT_FALSE(result.timeline.empty());
  // The chaos-killed child never dumped its telemetry part: the report
  // must say so instead of silently skipping it.
  EXPECT_EQ(result.parts_expected, 3);
  EXPECT_EQ(result.parts_missing, 1);
  EXPECT_EQ(result.parts_merged, 2);

  const std::string report = scenario::report_json(result);
  EXPECT_NE(report.find("\"schema\": \"rubic-soak-report/v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"passed\": true"), std::string::npos);
  EXPECT_NE(report.find("chaos-killed"), std::string::npos);
}

TEST(ScenarioEngine, TamperedZeroSumFailsTheVerifiedInvariant) {
  const char* text =
      "name = e2e-violation\n"
      "seed = 12\n"
      "seconds = 3\n"
      "contexts = 2\n"
      "pool = 4\n"
      "tick_ms = 100\n"
      "[process tampered]\n"
      "workload = traffic:mix=ycsb-b;curve=constant:rate=120,seconds=2;keys=2048\n"
      "start_ms = 0\n"
      "tamper = zero_sum\n"
      "[invariant verified]\n";
  const scenario::ScenarioSpec spec = scenario::parse_scenario(text);
  const scenario::RunResult result =
      scenario::run_scenario(spec, quiet_options("viol"));

  EXPECT_FALSE(result.passed);
  ASSERT_EQ(result.processes.size(), 1u);
  EXPECT_EQ(result.processes[0].outcome, "verify-failed");
  ASSERT_EQ(result.verdicts.size(), 1u);
  EXPECT_FALSE(result.verdicts[0].passed);
  EXPECT_GE(result.verdicts[0].first_violation_ms, 0);
  EXPECT_GE(result.verdicts[0].nearest_snapshot_ms, 0);
  EXPECT_NE(result.verdicts[0].detail.find("tampered"), std::string::npos)
      << result.verdicts[0].detail;
  const std::string report = scenario::report_json(result);
  EXPECT_NE(report.find("\"passed\": false"), std::string::npos);
}

}  // namespace

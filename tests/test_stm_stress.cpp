// Stress and failure-injection tests: epoch reclamation under multi-thread
// churn, starvation behaviour under extreme contention, retry-budget
// exhaustion mid-run, pool teardown racing transactions, and high-contention
// Vacation runs under both contention managers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/tds/rbtree.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

namespace rubic::stm {
namespace {

TEST(StmStress, EpochReclamationUnderChurn) {
  // Many threads continuously allocate, publish, unlink and free nodes
  // through a shared pointer array; the epoch scheme must neither crash
  // (use-after-free) nor leak unboundedly (limbo must drain). Reclamation
  // is backend-independent machinery, so both engines get the full churn.
  for (const BackendKind backend : known_backends()) {
    RuntimeConfig cfg;
    cfg.backend = backend;
    Runtime rt(cfg);
    struct Node {
      TVar<std::int64_t> value;
    };
    constexpr int kSlots = 32;
    std::vector<TVar<Node*>> slots(kSlots);
    {
      TxnDesc& ctx = rt.register_thread();
      atomically(ctx, [&](Txn& tx) {
        for (auto& slot : slots) {
          Node* n = tx.make<Node>();
          n->value.unsafe_write(0);
          slot.write(tx, n);
        }
      });
    }
    constexpr int kThreads = 4;
    util::SpinBarrier barrier(kThreads);
    std::atomic<bool> bad{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(500 + t);
        barrier.arrive_and_wait();
        for (int op = 0; op < 4000; ++op) {
          auto& slot = slots[rng.below(kSlots)];
          if (rng.below(2) == 0) {
            // Replace: free the old node, publish a fresh one.
            atomically(ctx, [&](Txn& tx) {
              Node* old = slot.read(tx);
              Node* fresh = tx.make<Node>();
              fresh->value.unsafe_write(op);
              slot.write(tx, fresh);
              tx.free(old);
            });
          } else {
            // Read through: the node must always be dereferenceable.
            const std::int64_t v = atomically(ctx, [&](Txn& tx) {
              Node* n = slot.read(tx);
              return n->value.read(tx);
            });
            if (v < 0) bad.store(true);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_FALSE(bad.load()) << "backend=" << backend_name(backend);
    // Exited workers leave queued frees behind; the quiescent drain must
    // reclaim every one of them.
    EXPECT_GT(rt.limbo_size(), 0u) << "churn should have deferred frees";
    rt.drain_all_matured_quiescent();
    EXPECT_EQ(rt.limbo_size(), 0u) << "backend=" << backend_name(backend);
    // Final nodes cleaned up manually (they're live heap objects).
    for (auto& slot : slots) ::operator delete(slot.unsafe_read());
  }
}

TEST(StmStress, ExtremeSingleWordContentionCompletes) {
  // All threads increment a single word: total serialization, worst-case
  // abort rates — every increment must still land (no lost updates, no
  // livelock) under both contention managers and both backends (NOrec
  // ignores cm, so one pass covers it).
  struct Case {
    BackendKind backend;
    CmPolicy cm;
  };
  for (const Case c : {Case{BackendKind::kOrecSwiss, CmPolicy::kTimidBackoff},
                       Case{BackendKind::kOrecSwiss, CmPolicy::kGreedyTimestamp},
                       Case{BackendKind::kNorec, CmPolicy::kTimidBackoff}}) {
    RuntimeConfig cfg;
    cfg.backend = c.backend;
    cfg.cm = c.cm;
    Runtime rt(cfg);
    TVar<std::int64_t> hot(0);
    constexpr int kThreads = 6;
    constexpr int kPerThread = 1000;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        TxnDesc& ctx = rt.register_thread();
        barrier.arrive_and_wait();
        for (int i = 0; i < kPerThread; ++i) {
          atomically(ctx, [&](Txn& tx) { hot.write(tx, hot.read(tx) + 1); });
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(hot.unsafe_read(), kThreads * kPerThread)
        << "backend=" << backend_name(c.backend)
        << " cm=" << static_cast<int>(c.cm);
  }
}

TEST(StmStress, RetryBudgetSurfacesMidWorkload) {
  // A bounded retry budget must turn pathological contention into a
  // catchable exception rather than silent livelock, and the victim's
  // partial work must be rolled back.
  RuntimeConfig cfg;
  cfg.max_retries = 4;
  Runtime rt(cfg);
  TVar<std::int64_t> x(0);
  TxnDesc& ctx = rt.register_thread();
  int bodies = 0;
  bool threw = false;
  try {
    atomically(ctx, [&](Txn& tx) {
      ++bodies;
      x.write(tx, 999);
      tx.retry();  // permanent self-inflicted conflict
    });
  } catch (const RetriesExhausted&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(bodies, 4);
  EXPECT_EQ(x.unsafe_read(), 0) << "no attempt may have leaked its writes";
  EXPECT_FALSE(ctx.active());
  // The context must be reusable afterwards.
  atomically(ctx, [&](Txn& tx) { x.write(tx, 1); });
  EXPECT_EQ(x.unsafe_read(), 1);
}

TEST(StmStress, ManyThreadsManyRuntimesIsolated) {
  // Two independent Runtime instances on interleaved threads must never
  // interact: commits in one do not advance the other's clock. Pinned to
  // the orec backend because it asserts exact clock values.
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kOrecSwiss;
  Runtime rt_a(cfg), rt_b(cfg);
  TVar<std::int64_t> a(0), b(0);
  std::thread worker_a([&] {
    TxnDesc& ctx = rt_a.register_thread();
    for (int i = 0; i < 500; ++i) {
      atomically(ctx, [&](Txn& tx) { a.write(tx, a.read(tx) + 1); });
    }
  });
  std::thread worker_b([&] {
    TxnDesc& ctx = rt_b.register_thread();
    for (int i = 0; i < 300; ++i) {
      atomically(ctx, [&](Txn& tx) { b.write(tx, b.read(tx) + 1); });
    }
  });
  worker_a.join();
  worker_b.join();
  EXPECT_EQ(rt_a.clock().load(), 500u);
  EXPECT_EQ(rt_b.clock().load(), 300u);
  EXPECT_EQ(a.unsafe_read(), 500);
  EXPECT_EQ(b.unsafe_read(), 300);
}

TEST(StmStress, NorecRuntimesIsolatedAndSequenceAccountsCommits) {
  // The NOrec analogue: each runtime's global sequence lock is private, and
  // after quiescence it equals exactly 2 × its own writing commits.
  RuntimeConfig cfg;
  cfg.backend = BackendKind::kNorec;
  Runtime rt_a(cfg), rt_b(cfg);
  TVar<std::int64_t> a(0), b(0);
  std::thread worker_a([&] {
    TxnDesc& ctx = rt_a.register_thread();
    for (int i = 0; i < 500; ++i) {
      atomically(ctx, [&](Txn& tx) { a.write(tx, a.read(tx) + 1); });
    }
  });
  std::thread worker_b([&] {
    TxnDesc& ctx = rt_b.register_thread();
    for (int i = 0; i < 300; ++i) {
      atomically(ctx, [&](Txn& tx) { b.write(tx, b.read(tx) + 1); });
    }
  });
  worker_a.join();
  worker_b.join();
  EXPECT_EQ(rt_a.norec_seq().load(), 1000u);
  EXPECT_EQ(rt_b.norec_seq().load(), 600u);
  EXPECT_EQ(rt_a.clock().load(), 0u) << "NOrec must not touch the version clock";
  EXPECT_EQ(a.unsafe_read(), 500);
  EXPECT_EQ(b.unsafe_read(), 300);
}

TEST(StmStress, VacationHighContentionBothManagers) {
  for (const CmPolicy cm : {CmPolicy::kTimidBackoff, CmPolicy::kGreedyTimestamp}) {
    RuntimeConfig cfg;
    cfg.backend = BackendKind::kOrecSwiss;  // cm only exists on orec
    cfg.cm = cm;
    Runtime rt(cfg);
    auto params = workloads::vacation::VacationParams::high_contention();
    params.rows_per_relation = 64;  // brutal: everyone fights over 64 rows
    params.customers = 64;
    workloads::vacation::VacationWorkload workload(rt, params);
    constexpr int kThreads = 4;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(900 + t);
        barrier.arrive_and_wait();
        for (int i = 0; i < 400; ++i) workload.run_task(ctx, rng);
      });
    }
    for (auto& th : threads) th.join();
    std::string error;
    EXPECT_TRUE(workload.verify(&error))
        << "cm=" << static_cast<int>(cm) << ": " << error;
  }
}

TEST(StmStress, RbTreeChurnWithTinyKeySpace) {
  // Two keys, four threads: near-every transaction conflicts structurally
  // (root rotations), the tree's invariants must hold throughout — on both
  // backends (this is the worst case for NOrec's whole-read-set
  // revalidation: every foreign commit forces one).
  for (const BackendKind backend : known_backends()) {
    RuntimeConfig cfg;
    cfg.backend = backend;
    Runtime rt(cfg);
    tds::RbTree tree;
    constexpr int kThreads = 4;
    util::SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        TxnDesc& ctx = rt.register_thread();
        util::Xoshiro256 rng(t);
        barrier.arrive_and_wait();
        for (int op = 0; op < 1500; ++op) {
          const auto key = static_cast<std::int64_t>(rng.below(2));
          if (rng.below(2) == 0) {
            atomically(ctx, [&](Txn& tx) { tree.insert(tx, key, op); });
          } else {
            atomically(ctx, [&](Txn& tx) { tree.erase(tx, key); });
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    std::string error;
    EXPECT_TRUE(tree.check_invariants(&error))
        << "backend=" << backend_name(backend) << ": " << error;
  }
}

}  // namespace
}  // namespace rubic::stm

// Tests for the malleable runtime: Algorithm 1 gating semantics, counter
// accounting, monitor feedback wiring, and the end-to-end TunedProcess.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/control/ebs.hpp"
#include "src/control/fixed.hpp"
#include "src/control/rubic.hpp"
#include "src/ipc/colocation_bus.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/runtime/monitor.hpp"
#include "src/runtime/process.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"
#include "src/workloads/rbset_workload.hpp"

namespace rubic::runtime {
namespace {

using namespace std::chrono_literals;

// A trivial workload whose tasks are instantaneous; lets the pool tests
// observe gating without STM noise.
class NopWorkload final : public workloads::Workload {
 public:
  std::string_view name() const override { return "nop"; }
  void run_task(stm::TxnDesc&, util::Xoshiro256&) override {
    tasks_.fetch_add(1, std::memory_order_relaxed);
    // Tiny pause so a gated worker cannot complete unbounded tasks between
    // two level changes on a single-core host.
    std::this_thread::yield();
  }
  bool verify(std::string*) override { return true; }
  std::uint64_t tasks() const { return tasks_.load(); }

 private:
  std::atomic<std::uint64_t> tasks_{0};
};

// Waits until `pred` holds or ~2s elapse; returns pred().
template <typename Pred>
bool eventually(Pred&& pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

TEST(MalleablePool, StartsAtInitialLevelWithRestBlocked) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 6, .initial_level = 1});
  EXPECT_EQ(pool.level(), 1);
  // Workers 1..5 park on their semaphores (Alg. 1 lines 8-10).
  EXPECT_TRUE(eventually([&] { return pool.blocked_workers() == 5; }));
  EXPECT_TRUE(eventually([&] { return pool.total_completed() > 0; }))
      << "worker 0 must be running tasks";
}

TEST(MalleablePool, OnlyActiveWorkersCompleteTasks) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 4, .initial_level = 2});
  EXPECT_TRUE(eventually([&] { return pool.blocked_workers() == 2; }));
  std::this_thread::sleep_for(50ms);
  const auto counters = pool.per_worker_completed();
  EXPECT_GT(counters[0], 0u);
  EXPECT_GT(counters[1], 0u);
  EXPECT_EQ(counters[2], 0u) << "tid 2 >= level 2 must never run";
  EXPECT_EQ(counters[3], 0u);
}

TEST(MalleablePool, RaisingLevelWakesExactlyTheNewWorkers) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 4, .initial_level = 1});
  ASSERT_TRUE(eventually([&] { return pool.blocked_workers() == 3; }));
  pool.set_level(3);
  EXPECT_TRUE(eventually([&] { return pool.blocked_workers() == 1; }));
  std::this_thread::sleep_for(30ms);
  const auto counters = pool.per_worker_completed();
  EXPECT_GT(counters[1], 0u);
  EXPECT_GT(counters[2], 0u);
  EXPECT_EQ(counters[3], 0u) << "tid 3 was not part of the raise";
}

TEST(MalleablePool, LoweringLevelParksSurplusWorkers) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 4, .initial_level = 4});
  ASSERT_TRUE(eventually([&] { return pool.total_completed() > 0; }));
  pool.set_level(1);
  EXPECT_TRUE(eventually([&] { return pool.blocked_workers() == 3; }));
  // Frozen workers stop accumulating.
  const auto before = pool.per_worker_completed();
  std::this_thread::sleep_for(30ms);
  const auto after = pool.per_worker_completed();
  for (int tid = 1; tid < 4; ++tid) {
    EXPECT_EQ(before[static_cast<std::size_t>(tid)],
              after[static_cast<std::size_t>(tid)])
        << "parked worker " << tid << " kept running";
  }
  EXPECT_GT(after[0], before[0]) << "worker 0 must keep running";
}

TEST(MalleablePool, LevelClampedToPool) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 3, .initial_level = 1});
  pool.set_level(100);
  EXPECT_EQ(pool.level(), 3);
  pool.set_level(-5);
  EXPECT_EQ(pool.level(), 1);
}

TEST(MalleablePool, RepeatedResizeCyclesAreLossless) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 8, .initial_level = 1});
  for (int cycle = 0; cycle < 50; ++cycle) {
    pool.set_level(1 + cycle % 8);
    std::this_thread::sleep_for(1ms);
  }
  pool.set_level(8);
  const auto before = pool.total_completed();
  EXPECT_TRUE(eventually([&] { return pool.total_completed() > before; }));
  pool.stop();  // must join cleanly with no stuck worker
  SUCCEED();
}

TEST(MalleablePool, StopWhileMostlyParkedJoins) {
  stm::Runtime rt;
  NopWorkload workload;
  auto pool = std::make_unique<MalleablePool>(
      rt, workload, PoolConfig{.pool_size = 16, .initial_level = 1});
  ASSERT_TRUE(eventually([&] { return pool->blocked_workers() == 15; }));
  pool.reset();  // destructor path: must not hang
  SUCCEED();
}

// Controller with a pre-scripted level schedule; records every throughput
// sample the monitor feeds it. Makes the monitor test deterministic (real
// throughput on a 1-core CI host is a noisy plateau).
class ScriptedController final : public control::Controller {
 public:
  explicit ScriptedController(std::vector<int> schedule)
      : schedule_(std::move(schedule)) {}
  int initial_level() const override { return 1; }
  int on_sample(double throughput) override {
    samples_.push_back(throughput);
    const auto i = std::min(index_++, schedule_.size() - 1);
    return schedule_[i];
  }
  void reset() override { index_ = 0; }
  std::string_view name() const override { return "Scripted"; }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<int> schedule_;
  std::size_t index_ = 0;
  std::vector<double> samples_;
};

TEST(Monitor, DrivesControllerAndAppliesLevels) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 16, .initial_level = 4});
  ScriptedController controller({2, 7, 16, 3});
  MonitorConfig mcfg;
  mcfg.period = 5ms;
  Monitor monitor(pool, controller, mcfg);
  // Constructor applies initial_level() before the first sample.
  EXPECT_TRUE(eventually([&] { return pool.level() == 1 || monitor.rounds() > 0; }));
  // The scripted schedule must be applied round by round, ending at 3.
  EXPECT_TRUE(eventually([&] { return monitor.rounds() >= 6; }));
  monitor.stop();
  EXPECT_EQ(pool.level(), 3);
  const auto& trace = monitor.trace();
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace[0].level, 2);
  EXPECT_EQ(trace[1].level, 7);
  EXPECT_EQ(trace[2].level, 16);
  EXPECT_EQ(trace[3].level, 3);
  // Every sample is a non-negative rate, and the worker pool demonstrably
  // produced work during the run.
  for (double s : controller.samples()) EXPECT_GE(s, 0.0);
  EXPECT_GT(pool.total_completed(), 0u);
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].elapsed, trace[i - 1].elapsed);
  }
}

TEST(Monitor, FixedControllerHoldsLevel) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 8, .initial_level = 1});
  control::FixedController controller(control::LevelBounds{1, 8}, 5, "Fixed");
  MonitorConfig mcfg;
  mcfg.period = 5ms;
  Monitor monitor(pool, controller, mcfg);
  EXPECT_TRUE(eventually([&] { return pool.level() == 5; }));
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(pool.level(), 5);
  monitor.stop();
}

TEST(Monitor, StopIsIdempotentAndDestructorSafe) {
  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 4, .initial_level = 1});
  control::FixedController controller(control::LevelBounds{1, 4}, 2, "Fixed");
  MonitorConfig mcfg;
  mcfg.period = 5ms;
  {
    Monitor monitor(pool, controller, mcfg);
    EXPECT_TRUE(eventually([&] { return monitor.rounds() > 0; }));
    // Contract (monitor.hpp): stop() may be called any number of times,
    // from several threads at once, and the destructor may follow an
    // explicit stop. Each call returns only after the thread is joined.
    std::thread concurrent([&] { monitor.stop(); });
    monitor.stop();
    concurrent.join();
    monitor.stop();
    const std::uint64_t rounds = monitor.rounds();
    std::this_thread::sleep_for(20ms);
    EXPECT_EQ(monitor.rounds(), rounds) << "loop must not run after stop()";
  }  // destructor after explicit stop: must not deadlock or double-join
}

TEST(Monitor, PublishesRoundsToCoLocationBus) {
  const std::string bus_name =
      "/rubic-test-monitor-" + std::to_string(::getpid());
  ipc::BusConfig bus_config;
  bus_config.name = bus_name;
  bus_config.contexts = 8;
  auto bus = ipc::CoLocationBus::create_or_attach(bus_config);
  ASSERT_GE(bus->acquire_slot("nop/fixed"), 0);

  stm::Runtime rt;
  NopWorkload workload;
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 4, .initial_level = 1});
  control::FixedController controller(control::LevelBounds{1, 4}, 3, "Fixed");
  MonitorConfig mcfg;
  mcfg.period = 5ms;
  mcfg.stm_runtime = &rt;
  mcfg.bus = bus.get();
  Monitor monitor(pool, controller, mcfg);
  EXPECT_TRUE(eventually([&] { return monitor.rounds() >= 3; }));
  monitor.stop();

  const auto peers = bus->snapshot();
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].state, ipc::PeerState::kAlive);
  EXPECT_GE(peers[0].payload.heartbeat, 3u);
  EXPECT_EQ(peers[0].payload.level, 3);
  EXPECT_GT(peers[0].payload.tasks_completed, 0u);

  bus.reset();
  ipc::CoLocationBus::unlink(bus_name);
}

TEST(TunedProcess, EndToEndRbSetWithRubic) {
  stm::Runtime rt;
  workloads::RbSetParams params = workloads::RbSetParams::tiny();
  workloads::RbSetWorkload workload(rt, params);
  control::RubicController controller(control::LevelBounds{1, 8});
  ProcessConfig cfg;
  cfg.pool.pool_size = 8;
  cfg.monitor.period = 5ms;
  TunedProcess process(rt, workload, controller, cfg);
  const RunReport report = process.run_for(300ms);

  EXPECT_GT(report.tasks_completed, 100u) << "the process must make progress";
  EXPECT_GT(report.tasks_per_second, 0.0);
  EXPECT_GE(report.final_level, 1);
  EXPECT_LE(report.final_level, 8);
  EXPECT_FALSE(report.trace.empty());
  EXPECT_GE(report.mean_level, 1.0);
  EXPECT_GT(report.stm_stats.commits, 0u);
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(TunedProcess, RunToCompletionReportsMakespan) {
  // Finite Intruder (exactly one epoch): run_to_completion must stop when
  // every packet has been processed, well before the timeout, and the
  // results must match ground truth exactly.
  stm::Runtime rt;
  workloads::intruder::StreamParams params;
  params.flow_count = 400;
  workloads::intruder::IntruderWorkload workload(rt, params,
                                                 /*epochs_limit=*/1);
  control::RubicController controller(control::LevelBounds{1, 4});
  ProcessConfig cfg;
  cfg.pool.pool_size = 4;
  cfg.monitor.period = 5ms;
  TunedProcess process(rt, workload, controller, cfg);
  bool completed = false;
  const RunReport report = process.run_to_completion(10s, &completed);
  EXPECT_TRUE(completed) << "one tiny epoch must finish within 10s";
  EXPECT_LT(report.seconds, 9.0);
  EXPECT_TRUE(workload.done());
  EXPECT_EQ(workload.flows_completed(), params.flow_count);
  EXPECT_EQ(workload.attacks_found(), workload.stream().attack_flow_count());
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

TEST(TunedProcess, RunToCompletionTimesOutOnStreamingWorkload) {
  stm::Runtime rt;
  workloads::RbSetParams params = workloads::RbSetParams::tiny();
  workloads::RbSetWorkload workload(rt, params);  // never done()
  control::RubicController controller(control::LevelBounds{1, 2});
  ProcessConfig cfg;
  cfg.pool.pool_size = 2;
  cfg.monitor.period = 5ms;
  TunedProcess process(rt, workload, controller, cfg);
  bool completed = true;
  const RunReport report = process.run_to_completion(100ms, &completed);
  EXPECT_FALSE(completed);
  EXPECT_GE(report.seconds, 0.1);
}

TEST(TunedProcess, VerifiableUnderAggressiveResizing) {
  // Force violent level swings while transactions run; the workload's
  // invariants must survive (workers are parked only between tasks, never
  // mid-transaction).
  stm::Runtime rt;
  workloads::RbSetParams params = workloads::RbSetParams::tiny();
  workloads::RbSetWorkload workload(rt, params);
  MalleablePool pool(rt, workload, PoolConfig{.pool_size = 8, .initial_level = 8});
  for (int i = 0; i < 100; ++i) {
    pool.set_level(i % 2 == 0 ? 1 : 8);
    std::this_thread::sleep_for(1ms);
  }
  pool.stop();
  std::string error;
  EXPECT_TRUE(workload.verify(&error)) << error;
}

}  // namespace
}  // namespace rubic::runtime

// Contention profiler (src/stm/profiler.*): label interning, the sample
// path (sampling, aggregation, drop accounting), the JSON schema round
// trip, cross-process merge, the derived hotspot/pair views, and — the
// acceptance piece — deterministic conflict attribution through every
// backend's real engine conflict sites, driven by the same manual
// two-context protocol scripts test_stm_backend.cpp uses (no threads, no
// scheduler dependence: each conflict is staged by hand and must attribute
// to the exact stripe that was fought over).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/tds/btree.hpp"
#include "src/tds/skiplist.hpp"

namespace rubic::stm {
namespace {

using profiler::ContentionSnapshot;
using profiler::SampleRow;

RuntimeConfig with_backend(BackendKind kind) {
  RuntimeConfig cfg;
  cfg.backend = kind;
  return cfg;
}

// --- labels ---

TEST(ProfilerLabels, InternIsStableAndRoundTrips) {
  const std::uint16_t a = profiler::intern_label("proftest:alpha");
  const std::uint16_t b = profiler::intern_label("proftest:beta");
  EXPECT_NE(a, profiler::kUnlabeled);
  EXPECT_NE(b, profiler::kUnlabeled);
  EXPECT_NE(a, b);
  EXPECT_EQ(profiler::intern_label("proftest:alpha"), a);
  EXPECT_EQ(profiler::label_name(a), "proftest:alpha");
  EXPECT_EQ(profiler::label_name(b), "proftest:beta");
  EXPECT_EQ(profiler::label_name(profiler::kUnlabeled), "");
  EXPECT_EQ(profiler::label_name(0xfffe), "") << "unknown ids render empty";
}

TEST(ProfilerLabels, ScopedLabelNestsAndRestores) {
  const std::uint16_t outer = profiler::intern_label("proftest:outer");
  const std::uint16_t inner = profiler::intern_label("proftest:inner");
  EXPECT_EQ(profiler::current_label(), profiler::kUnlabeled);
  {
    profiler::ScopedTxnLabel a(outer);
    EXPECT_EQ(profiler::current_label(), outer);
    {
      profiler::ScopedTxnLabel b(inner);
      EXPECT_EQ(profiler::current_label(), inner);
    }
    EXPECT_EQ(profiler::current_label(), outer);
  }
  EXPECT_EQ(profiler::current_label(), profiler::kUnlabeled);
}

// --- sample path ---

TEST(ProfilerSamples, DisarmedRecordIsANoOp) {
  profiler::arm();
  profiler::record(7, BackendKind::kOrecSwiss, AbortCause::kWriteConflict,
                   profiler::kUnlabeled, profiler::kUnlabeled);
  profiler::disarm();
  for (int i = 0; i < 5; ++i) {
    profiler::record(7, BackendKind::kOrecSwiss, AbortCause::kWriteConflict,
                     profiler::kUnlabeled, profiler::kUnlabeled);
  }
  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_EQ(snap.sampled, 1u) << "records after disarm must not land";
  ASSERT_EQ(snap.rows.size(), 1u);
  EXPECT_EQ(snap.rows[0].count, 1u);
}

TEST(ProfilerSamples, ArmStartsAFreshWindow) {
  profiler::Armed armed;
  profiler::record(1, BackendKind::kOrecSwiss, AbortCause::kReadConflict,
                   profiler::kUnlabeled, profiler::kUnlabeled);
  EXPECT_EQ(profiler::snapshot().sampled, 1u);
  profiler::arm();  // discards the previous window
  EXPECT_EQ(profiler::snapshot().sampled, 0u);
  EXPECT_TRUE(profiler::snapshot().rows.empty());
}

TEST(ProfilerSamples, AggregatesByTupleAndSortsByCount) {
  profiler::Armed armed;
  const std::uint16_t v = profiler::intern_label("proftest:victim");
  for (int i = 0; i < 5; ++i) {
    profiler::record(11, BackendKind::kTl2, AbortCause::kWriteConflict, v,
                     profiler::kUnlabeled);
  }
  profiler::record(22, BackendKind::kTl2, AbortCause::kValidationFailed, v,
                   profiler::kUnlabeled);
  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_EQ(snap.sampled, 6u);
  EXPECT_EQ(snap.dropped, 0u);
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_EQ(snap.rows[0].stripe, 11u) << "hottest row first";
  EXPECT_EQ(snap.rows[0].count, 5u);
  EXPECT_EQ(snap.rows[0].backend, "tl2");
  EXPECT_EQ(snap.rows[0].cause, "write_conflict");
  EXPECT_EQ(snap.rows[0].victim, "proftest:victim");
  EXPECT_EQ(snap.rows[1].stripe, 22u);
  EXPECT_EQ(snap.rows[1].cause, "validation_failed");
}

TEST(ProfilerSamples, SampleEveryRecordsEveryNth) {
  profiler::Armed armed(profiler::ProfilerConfig{4});
  for (int i = 0; i < 16; ++i) {
    profiler::record(3, BackendKind::kNorec, AbortCause::kValidationFailed,
                     profiler::kUnlabeled, profiler::kUnlabeled);
  }
  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_EQ(snap.sample_every, 4u);
  EXPECT_EQ(snap.sampled, 4u) << "every 4th abort is recorded";
}

TEST(ProfilerSamples, FullProbeWindowBumpsDroppedNotEvicts) {
  profiler::Armed armed;
  // Far more distinct tuples than the table holds: the overflow must be
  // counted, never silently lost, and never evict an existing bucket.
  constexpr std::uint64_t kDistinct = 1 << 16;
  for (std::uint64_t stripe = 0; stripe < kDistinct; ++stripe) {
    profiler::record(stripe, BackendKind::kOrecSwiss,
                     AbortCause::kWriteConflict, profiler::kUnlabeled,
                     profiler::kUnlabeled);
  }
  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_GT(snap.dropped, 0u);
  EXPECT_EQ(snap.sampled + snap.dropped, kDistinct);
  std::uint64_t total = 0;
  for (const SampleRow& r : snap.rows) total += r.count;
  EXPECT_EQ(total, snap.sampled);
}

// --- JSON round trip / merge / derived views ---

ContentionSnapshot sample_snapshot() {
  ContentionSnapshot snap;
  snap.ts_ns = 12345;
  snap.sample_every = 2;
  snap.sampled = 9;
  snap.dropped = 1;
  snap.rows = {
      {17, "orec_swiss", "write_conflict", "kv:transfer", "kv:scan", 5},
      {17, "orec_swiss", "read_conflict", "kv:transfer", "", 3},
      {profiler::kNoStripe, "orec_swiss", "user_retry", "", "", 1},
  };
  return snap;
}

TEST(ProfilerJson, RoundTripsHeaderAndRows) {
  const ContentionSnapshot snap = sample_snapshot();
  const std::string doc = profiler::to_json(snap);
  EXPECT_NE(doc.find("rubic-contention/v1"), std::string::npos);
  EXPECT_NE(doc.find("\"stripe\": null"), std::string::npos)
      << "kNoStripe renders as null";
  ContentionSnapshot parsed;
  std::string error;
  ASSERT_TRUE(profiler::parse_json(doc, &parsed, &error)) << error;
  EXPECT_EQ(parsed.ts_ns, snap.ts_ns);
  EXPECT_EQ(parsed.sample_every, snap.sample_every);
  EXPECT_EQ(parsed.sampled, snap.sampled);
  EXPECT_EQ(parsed.dropped, snap.dropped);
  EXPECT_EQ(parsed.rows, snap.rows);
}

TEST(ProfilerJson, RejectsSchemaMismatchAndGarbage) {
  ContentionSnapshot out;
  std::string error;
  EXPECT_FALSE(profiler::parse_json("not json", &out, &error));
  EXPECT_FALSE(error.empty());
  std::string doc = profiler::to_json(sample_snapshot());
  const std::size_t at = doc.find("rubic-contention/v1");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, 19, "rubic-contention/v9");
  EXPECT_FALSE(profiler::parse_json(doc, &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(ProfilerMerge, SumsRowsByKeyAndHeaders) {
  ContentionSnapshot a = sample_snapshot();
  ContentionSnapshot b;
  b.ts_ns = 99999;
  b.sample_every = 1;
  b.sampled = 4;
  b.dropped = 0;
  b.rows = {
      {17, "orec_swiss", "write_conflict", "kv:transfer", "kv:scan", 2},
      {40, "tl2", "validation_failed", "", "", 2},
  };
  const std::vector<ContentionSnapshot> parts = {a, b};
  const ContentionSnapshot merged = profiler::merge(parts);
  EXPECT_EQ(merged.ts_ns, 99999u);
  EXPECT_EQ(merged.sample_every, 2u);
  EXPECT_EQ(merged.sampled, 13u);
  EXPECT_EQ(merged.dropped, 1u);
  ASSERT_EQ(merged.rows.size(), 4u);
  EXPECT_EQ(merged.rows[0].stripe, 17u);
  EXPECT_EQ(merged.rows[0].cause, "write_conflict");
  EXPECT_EQ(merged.rows[0].count, 7u) << "matching rows sum";
}

TEST(ProfilerViews, HotspotsGroupByStripeAndSkipSentinel) {
  const std::vector<profiler::Hotspot> hot =
      profiler::hotspots(sample_snapshot());
  ASSERT_EQ(hot.size(), 1u) << "the sentinel row must be excluded";
  EXPECT_EQ(hot[0].stripe, 17u);
  EXPECT_EQ(hot[0].backend, "orec_swiss");
  EXPECT_EQ(hot[0].total, 8u);
  ASSERT_EQ(hot[0].causes.size(), 2u);
  EXPECT_EQ(hot[0].causes[0].first, "write_conflict");
  EXPECT_EQ(hot[0].causes[0].second, 5u);
  ASSERT_EQ(hot[0].labels.size(), 1u);
  EXPECT_EQ(hot[0].labels[0].first, "kv:transfer");
}

TEST(ProfilerViews, ConflictPairsAggregateVictimOwnerEdges) {
  const std::vector<profiler::ConflictEdge> pairs =
      profiler::conflict_pairs(sample_snapshot());
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].victim, "kv:transfer");
  EXPECT_EQ(pairs[0].owner, "kv:scan");
  EXPECT_EQ(pairs[0].count, 5u);
}

// --- engine attribution (the acceptance tests) ---
//
// Each test stages a skewed conflict pattern by hand — kHot conflicts on
// one variable, one on a cold variable — through the backend's real
// conflict sites, then asserts the top hotspot is exactly the hot
// variable's stripe with the right backend/cause/label attribution.

constexpr int kHot = 8;

TEST(ProfilerAttribution, OrecSwissWriteConflictNamesTheHotStripe) {
  Runtime rt(with_backend(BackendKind::kOrecSwiss));
  TxnDesc& holder = rt.register_thread();
  TxnDesc& victim = rt.register_thread();
  TVar<std::int64_t> hot(0), cold(0);
  profiler::Armed armed;
  const std::uint16_t owner_id = profiler::intern_label("prof:owner");
  const std::uint16_t victim_id = profiler::intern_label("prof:victim");
  const auto clash = [&](TVar<std::int64_t>& var) {
    // Holder write-locks the stripe at encounter time; the victim's write
    // hits the held lock and (timid CM) aborts on the spot.
    profiler::set_current_label(owner_id);
    holder.begin(true);
    Txn htx(holder);
    var.write(htx, 1);
    profiler::set_current_label(victim_id);
    victim.begin(true);
    Txn vtx(victim);
    EXPECT_THROW(var.write(vtx, 2), detail::AbortTx);
    victim.rollback(AbortCause::kWriteConflict);
    holder.commit();
    profiler::set_current_label(profiler::kUnlabeled);
  };
  for (int i = 0; i < kHot; ++i) clash(hot);
  clash(cold);

  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_EQ(snap.sampled, static_cast<std::uint64_t>(kHot + 1));
  const auto top = profiler::hotspots(snap);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].stripe, rt.orecs().index_of(rt.orecs().for_address(&hot)));
  EXPECT_EQ(top[0].backend, "orec_swiss");
  EXPECT_EQ(top[0].total, static_cast<std::uint64_t>(kHot));
  EXPECT_EQ(top[0].causes[0].first, "write_conflict");
  EXPECT_EQ(top[0].labels[0].first, "prof:victim");
  const auto pairs = profiler::conflict_pairs(snap);
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].victim, "prof:victim");
  EXPECT_EQ(pairs[0].owner, "prof:owner") << "owner label read off the lock";
}

TEST(ProfilerAttribution, Tl2CommitAbortNamesTheHotStripe) {
  Runtime rt(with_backend(BackendKind::kTl2));
  TxnDesc& committer = rt.register_thread();
  TxnDesc& owner = rt.register_thread();
  TVar<std::int64_t> hot(0), cold(0);
  profiler::Armed armed;
  const std::uint16_t owner_id = profiler::intern_label("prof:tl2owner");
  // Stamp the owner descriptor's label (begin() while armed records it).
  profiler::set_current_label(owner_id);
  owner.begin(true);
  owner.commit();
  profiler::set_current_label(profiler::kUnlabeled);
  const auto clash = [&](TVar<std::int64_t>& var) {
    // TL2 locks at commit time only: park a foreign lock on the stripe by
    // hand (a stalled committer) and let the commit-time acquisition fail.
    Orec& orec = rt.orecs().for_address(&var);
    const LockWord pre = orec.load();
    ASSERT_TRUE(orec.try_lock(pre, &owner));
    committer.begin(true);
    Txn tx(committer);
    var.write(tx, 1);
    EXPECT_THROW(committer.commit(), detail::AbortTx);
    committer.rollback(AbortCause::kWriteConflict);
    orec.restore(pre);
  };
  for (int i = 0; i < kHot; ++i) clash(hot);
  clash(cold);

  const ContentionSnapshot snap = profiler::snapshot();
  const auto top = profiler::hotspots(snap);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].stripe, rt.orecs().index_of(rt.orecs().for_address(&hot)));
  EXPECT_EQ(top[0].backend, "tl2");
  EXPECT_EQ(top[0].total, static_cast<std::uint64_t>(kHot));
  EXPECT_EQ(top[0].causes[0].first, "write_conflict");
  const auto pairs = profiler::conflict_pairs(snap);
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].owner, "prof:tl2owner");
}

TEST(ProfilerAttribution, TwoPlUndoNoWaitAbortNamesTheHotStripe) {
  Runtime rt(with_backend(BackendKind::k2plUndo));
  TxnDesc& holder = rt.register_thread();
  TxnDesc& victim = rt.register_thread();
  TVar<std::int64_t> hot(0), cold(0);
  profiler::Armed armed;
  const std::uint16_t owner_id = profiler::intern_label("prof:2plowner");
  const auto clash = [&](TVar<std::int64_t>& var) {
    profiler::set_current_label(owner_id);
    holder.begin(true);
    Txn htx(holder);
    var.write(htx, 1);  // eager engine: write lock held in place
    profiler::set_current_label(profiler::kUnlabeled);
    victim.begin(true);
    Txn vtx(victim);
    EXPECT_THROW(var.write(vtx, 9), detail::AbortTx);
    victim.rollback(AbortCause::kWriteConflict);
    holder.commit();
  };
  for (int i = 0; i < kHot; ++i) clash(hot);
  clash(cold);

  const ContentionSnapshot snap = profiler::snapshot();
  const auto top = profiler::hotspots(snap);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].stripe,
            rt.rwlocks().index_of(rt.rwlocks().for_address(&hot)));
  EXPECT_EQ(top[0].backend, "2plundo");
  EXPECT_EQ(top[0].total, static_cast<std::uint64_t>(kHot));
  EXPECT_EQ(top[0].causes[0].first, "write_conflict");
  const auto pairs = profiler::conflict_pairs(snap);
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(pairs[0].owner, "prof:2plowner");
}

TEST(ProfilerAttribution, NorecValidationFailureNamesTheGeneration) {
  // NOrec has no per-stripe metadata: attribution names the global
  // sequence generation of the writing commit that invalidated the
  // snapshot — each staged conflict lands on a distinct generation.
  Runtime rt(with_backend(BackendKind::kNorec));
  TxnDesc& reader = rt.register_thread();
  TxnDesc& writer = rt.register_thread();
  TVar<std::int64_t> x(0), y(0);
  profiler::Armed armed;
  const std::uint16_t victim_id = profiler::intern_label("prof:norecvictim");
  for (int i = 0; i < kHot; ++i) {
    profiler::set_current_label(victim_id);
    reader.begin(true);
    Txn rtx(reader);
    (void)x.read(rtx);
    profiler::set_current_label(profiler::kUnlabeled);
    // A writing commit between the read and the next validation: the
    // value changed, so revalidation must fail.
    atomically(writer, [&](Txn& tx) { x.write(tx, x.read(tx) + 1); });
    EXPECT_THROW((void)y.read(rtx), detail::AbortTx);
    reader.rollback(AbortCause::kValidationFailed);
  }

  const ContentionSnapshot snap = profiler::snapshot();
  EXPECT_EQ(snap.sampled, static_cast<std::uint64_t>(kHot));
  ASSERT_EQ(snap.rows.size(), static_cast<std::size_t>(kHot))
      << "each conflict names its own generation";
  for (const SampleRow& r : snap.rows) {
    EXPECT_NE(r.stripe, profiler::kNoStripe);
    EXPECT_EQ(r.backend, "norec");
    EXPECT_EQ(r.cause, "validation_failed");
    EXPECT_EQ(r.victim, "prof:norecvictim");
  }
}

// --- data-structure site attribution (src/tds/) ---
//
// The skiplist/B+-tree transaction sites run under "tds:<structure>:<op>"
// labels; these tests stage the same conflict repeatedly through the real
// structure code and pin the attribution: every sample lands on one stripe
// and the victim→owner pair names the two structure sites that collided.

TEST(ProfilerAttribution, SkipListSitesPinOneStripeAndNameTheirLabels) {
  Runtime rt(with_backend(BackendKind::kOrecSwiss));
  TxnDesc& holder = rt.register_thread();
  TxnDesc& victim = rt.register_thread();
  tds::TSkipList list(/*seed=*/0x5eed);
  // Pre-populate quiescently; every insert/remove also writes the shared
  // size counter, which guarantees a write-write clash below.
  for (const std::int64_t key : {100, 200, 300}) {
    atomically(holder, [&](Txn& tx) { list.insert(tx, key, key); });
  }
  profiler::Armed armed;
  const std::uint16_t owner_id = profiler::intern_label("tds:skiplist:insert");
  const std::uint16_t victim_id = profiler::intern_label("tds:skiplist:remove");
  for (int i = 0; i < kHot; ++i) {
    // Holder: a pending insert, write locks held at encounter time.
    profiler::set_current_label(owner_id);
    holder.begin(true);
    Txn htx(holder);
    ASSERT_TRUE(list.insert(htx, 150, 150));
    // Victim: a remove elsewhere in the key space still collides (size
    // counter at the latest) and must abort at the same stripe each round.
    profiler::set_current_label(victim_id);
    victim.begin(true);
    Txn vtx(victim);
    EXPECT_THROW((void)list.remove(vtx, 300), detail::AbortTx);
    victim.rollback(AbortCause::kWriteConflict);
    // Roll the holder back so every round replays the identical conflict.
    holder.rollback(AbortCause::kUserRetry);
    profiler::set_current_label(profiler::kUnlabeled);
  }

  const ContentionSnapshot snap = profiler::snapshot();
  const auto top = profiler::hotspots(snap);
  ASSERT_FALSE(top.empty());
  EXPECT_NE(top[0].stripe, profiler::kNoStripe);
  EXPECT_EQ(top[0].total, static_cast<std::uint64_t>(kHot))
      << "the staged conflict must pin one stripe every round";
  EXPECT_EQ(top[0].backend, "orec_swiss");
  EXPECT_EQ(top[0].labels[0].first, "tds:skiplist:remove");
  const auto pairs = profiler::conflict_pairs(snap);
  bool found = false;
  for (const auto& p : pairs) {
    if (p.victim == "tds:skiplist:remove" && p.owner == "tds:skiplist:insert") {
      EXPECT_EQ(p.count, static_cast<std::uint64_t>(kHot));
      found = true;
    }
  }
  EXPECT_TRUE(found) << "victim→owner pair must name the skiplist sites";
}

TEST(ProfilerAttribution, BTreeSitesPinOneStripeAndNameTheirLabels) {
  Runtime rt(with_backend(BackendKind::kOrecSwiss));
  TxnDesc& holder = rt.register_thread();
  TxnDesc& victim = rt.register_thread();
  tds::TBTree tree;
  // Small tree: both ops hit the root leaf's key array and count word.
  for (const std::int64_t key : {10, 20, 30}) {
    atomically(holder, [&](Txn& tx) { tree.insert(tx, key, key); });
  }
  profiler::Armed armed;
  const std::uint16_t owner_id = profiler::intern_label("tds:btree:insert");
  const std::uint16_t victim_id = profiler::intern_label("tds:btree:remove");
  for (int i = 0; i < kHot; ++i) {
    profiler::set_current_label(owner_id);
    holder.begin(true);
    Txn htx(holder);
    ASSERT_TRUE(tree.insert(htx, 15, 15));
    profiler::set_current_label(victim_id);
    victim.begin(true);
    Txn vtx(victim);
    EXPECT_THROW((void)tree.remove(vtx, 30), detail::AbortTx);
    victim.rollback(AbortCause::kWriteConflict);
    holder.rollback(AbortCause::kUserRetry);
    profiler::set_current_label(profiler::kUnlabeled);
  }

  const ContentionSnapshot snap = profiler::snapshot();
  const auto top = profiler::hotspots(snap);
  ASSERT_FALSE(top.empty());
  EXPECT_NE(top[0].stripe, profiler::kNoStripe);
  EXPECT_EQ(top[0].total, static_cast<std::uint64_t>(kHot));
  EXPECT_EQ(top[0].backend, "orec_swiss");
  EXPECT_EQ(top[0].labels[0].first, "tds:btree:remove");
  const auto pairs = profiler::conflict_pairs(snap);
  bool found = false;
  for (const auto& p : pairs) {
    if (p.victim == "tds:btree:remove" && p.owner == "tds:btree:insert") {
      EXPECT_EQ(p.count, static_cast<std::uint64_t>(kHot));
      found = true;
    }
  }
  EXPECT_TRUE(found) << "victim→owner pair must name the B+-tree sites";
}

TEST(ProfilerAttribution, NonConflictCausesRecordTheSentinel) {
  Runtime rt(with_backend(BackendKind::kOrecSwiss));
  TxnDesc& ctx = rt.register_thread();
  profiler::Armed armed;
  ctx.begin(true);
  ctx.rollback(AbortCause::kUserRetry);
  const ContentionSnapshot snap = profiler::snapshot();
  ASSERT_EQ(snap.rows.size(), 1u);
  EXPECT_EQ(snap.rows[0].stripe, profiler::kNoStripe)
      << "no conflict site: the sentinel, not a stale stripe";
  EXPECT_EQ(snap.rows[0].cause, "user_retry");
}

TEST(ProfilerAttribution, DisarmedRunRecordsNothing) {
  Runtime rt(with_backend(BackendKind::kOrecSwiss));
  TxnDesc& holder = rt.register_thread();
  TxnDesc& victim = rt.register_thread();
  TVar<std::int64_t> x(0);
  profiler::arm();
  profiler::disarm();
  holder.begin(true);
  Txn htx(holder);
  x.write(htx, 1);
  victim.begin(true);
  Txn vtx(victim);
  EXPECT_THROW(x.write(vtx, 2), detail::AbortTx);
  victim.rollback(AbortCause::kWriteConflict);
  holder.commit();
  EXPECT_EQ(profiler::snapshot().sampled, 0u);
}

}  // namespace
}  // namespace rubic::stm

// Live introspection endpoint (src/telemetry/http_server.*): --listen spec
// parsing, the protocol subset (GET/HEAD, 404, 405, malformed requests),
// route dispatch, the standard /metrics and /healthz bodies, and stop()
// idempotence. The client side is a raw blocking socket speaking exactly
// what curl would, so these tests pin the wire format, not a client
// library's tolerance.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/telemetry/http_server.hpp"
#include "src/telemetry/telemetry.hpp"

namespace rubic::telemetry {
namespace {

// One round trip: connect to 127.0.0.1:port, send `request` verbatim, read
// to EOF (the server closes after one response).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  // The harness must never wedge on a server that accepted but won't
  // answer (e.g. a stopped server whose listen backlog still connects).
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path,
                const std::string& method = "GET") {
  return http_exchange(port, method + " " + path +
                                 " HTTP/1.1\r\nHost: t\r\n"
                                 "Connection: close\r\n\r\n");
}

TEST(ListenSpec, ParsesPortAndHostPortForms) {
  const auto bare = parse_listen_spec("9100");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1") << "bare port stays loopback";
  EXPECT_EQ(bare->port, 9100);
  const auto pair = parse_listen_spec("0.0.0.0:8080");
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->host, "0.0.0.0");
  EXPECT_EQ(pair->port, 8080);
  const auto localhost = parse_listen_spec("localhost:7000");
  ASSERT_TRUE(localhost.has_value());
  EXPECT_EQ(localhost->host, "127.0.0.1");
  const auto ephemeral = parse_listen_spec("0");
  ASSERT_TRUE(ephemeral.has_value());
  EXPECT_EQ(ephemeral->port, 0);
}

TEST(ListenSpec, RejectsMalformedInput) {
  EXPECT_FALSE(parse_listen_spec("").has_value());
  EXPECT_FALSE(parse_listen_spec("notaport").has_value());
  EXPECT_FALSE(parse_listen_spec("70000").has_value());
  EXPECT_FALSE(parse_listen_spec("-1").has_value());
  EXPECT_FALSE(parse_listen_spec("example.com:80").has_value())
      << "no resolver: numeric hosts (or localhost) only";
  EXPECT_FALSE(parse_listen_spec("1.2.3:80").has_value());
  EXPECT_FALSE(parse_listen_spec("127.0.0.1:").has_value());
  EXPECT_FALSE(parse_listen_spec(":9100").has_value());
}

class HttpEndpointTest : public ::testing::Test {
 protected:
  // Port 0: the kernel assigns a free port, so parallel ctest shards never
  // collide; port() reports the real one.
  HttpEndpointTest() : server_(ListenSpec{"127.0.0.1", 0}) {
    server_.route("/ping", [] {
      HttpResponse r;
      r.body = "pong\n";
      return r;
    });
    server_.route("/healthz", [] { return healthz_response(); });
    server_.start();
  }

  HttpServer server_;
};

TEST_F(HttpEndpointTest, ServesRegisteredRoute) {
  const std::string response = get(server_.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_NE(response.find("pong\n"), std::string::npos);
  EXPECT_GE(server_.requests(), 1u);
}

TEST_F(HttpEndpointTest, HealthzAnswersOk) {
  const std::string response = get(server_.port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("ok\n"), std::string::npos);
}

TEST_F(HttpEndpointTest, QueryStringIsIgnoredForMatching) {
  const std::string response = get(server_.port(), "/ping?x=1&y=2");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
}

TEST_F(HttpEndpointTest, UnknownPathIs404) {
  const std::string response = get(server_.port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

TEST_F(HttpEndpointTest, PostIs405) {
  const std::string response = get(server_.port(), "/ping", "POST");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
}

TEST_F(HttpEndpointTest, HeadReturnsHeadersWithoutBody) {
  const std::string response = get(server_.port(), "/ping", "HEAD");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length: 5"), std::string::npos);
  EXPECT_EQ(response.find("pong"), std::string::npos)
      << "HEAD must omit the body";
}

TEST_F(HttpEndpointTest, MalformedRequestLineIs400) {
  const std::string response =
      http_exchange(server_.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST_F(HttpEndpointTest, MetricsResponseIsPrometheusText) {
  Registry registry;
  registry.counter("http_test_events_total").add(3);
  registry.histogram("http_test_latency_us").observe(7);
  server_.route("/metrics", [&registry] { return metrics_response(registry); });
  const std::string response = get(server_.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4"),
      std::string::npos)
      << response;
  EXPECT_NE(response.find("# TYPE http_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(response.find("http_test_events_total 3"), std::string::npos);
  EXPECT_NE(response.find("http_test_latency_us_bucket"), std::string::npos);
}

TEST_F(HttpEndpointTest, RouteReplacementTakesEffect) {
  server_.route("/ping", [] {
    HttpResponse r;
    r.body = "pong2\n";
    return r;
  });
  const std::string response = get(server_.port(), "/ping");
  EXPECT_NE(response.find("pong2\n"), std::string::npos) << response;
}

TEST(HttpServerLifecycle, StopIsIdempotentAndSafeWithoutStart) {
  {
    HttpServer server(ListenSpec{"127.0.0.1", 0});
    server.stop();  // never started
    server.stop();
  }
  std::uint16_t port = 0;
  {
    HttpServer server(ListenSpec{"127.0.0.1", 0});
    server.route("/x", [] { return healthz_response(); });
    server.start();
    port = server.port();
    EXPECT_NE(get(port, "/x").find("200 OK"), std::string::npos);
    server.stop();
    server.stop();  // second stop is a no-op
  }
  // Destroyed: the listener is closed, so connections are refused.
  EXPECT_TRUE(get(port, "/x").empty());
}

TEST(HttpServerLifecycle, TwoServersCoexistOnDistinctPorts) {
  HttpServer a(ListenSpec{"127.0.0.1", 0});
  HttpServer b(ListenSpec{"127.0.0.1", 0});
  a.route("/who", [] {
    HttpResponse r;
    r.body = "a";
    return r;
  });
  b.route("/who", [] {
    HttpResponse r;
    r.body = "b";
    return r;
  });
  a.start();
  b.start();
  EXPECT_NE(a.port(), b.port());
  EXPECT_NE(get(a.port(), "/who").find("\r\n\r\na"), std::string::npos);
  EXPECT_NE(get(b.port(), "/who").find("\r\n\r\nb"), std::string::npos);
}

}  // namespace
}  // namespace rubic::telemetry

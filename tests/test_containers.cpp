// Tests for the transactional hash map and sorted list: functional
// behaviour, model checking against std containers under randomized op
// sequences (parameterized), and concurrent stress with invariant checks.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/stm/stm.hpp"
#include "src/util/rng.hpp"
#include "src/util/spin_barrier.hpp"
#include "src/tds/thashmap.hpp"
#include "src/tds/tlist.hpp"

namespace rubic::tds {
namespace {

// ---------- THashMap ----------

class THashMapTest : public ::testing::Test {
 protected:
  stm::Runtime rt_;
  stm::TxnDesc& ctx_ = rt_.register_thread();
  THashMap map_{64, 4};

  template <typename F>
  auto tx(F&& f) {
    return stm::atomically(ctx_, std::forward<F>(f));
  }
};

TEST_F(THashMapTest, InsertGetErase) {
  EXPECT_TRUE(tx([&](stm::Txn& t) { return map_.insert(t, 1, 10); }));
  EXPECT_FALSE(tx([&](stm::Txn& t) { return map_.insert(t, 1, 11); }));
  EXPECT_EQ(tx([&](stm::Txn& t) { return map_.get(t, 1); }), 10);
  EXPECT_EQ(tx([&](stm::Txn& t) { return map_.get(t, 2); }), std::nullopt);
  EXPECT_TRUE(tx([&](stm::Txn& t) { return map_.erase(t, 1); }));
  EXPECT_FALSE(tx([&](stm::Txn& t) { return map_.erase(t, 1); }));
  EXPECT_EQ(map_.unsafe_size(), 0u);
  EXPECT_TRUE(map_.check_invariants());
}

TEST_F(THashMapTest, PutOverwrites) {
  EXPECT_TRUE(tx([&](stm::Txn& t) { return map_.put(t, 5, 1); }));
  EXPECT_FALSE(tx([&](stm::Txn& t) { return map_.put(t, 5, 2); }));
  EXPECT_EQ(tx([&](stm::Txn& t) { return map_.get(t, 5); }), 2);
  EXPECT_EQ(map_.unsafe_size(), 1u);
}

TEST_F(THashMapTest, ChainsHandleCollisions) {
  // 64 buckets, 500 keys: every bucket chains multiple keys.
  for (std::int64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tx([&](stm::Txn& t) { return map_.insert(t, k, k * 3); }));
  }
  EXPECT_EQ(map_.unsafe_size(), 500u);
  for (std::int64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(tx([&](stm::Txn& t) { return map_.get(t, k); }), k * 3);
  }
  std::string error;
  EXPECT_TRUE(map_.check_invariants(&error)) << error;
  // Erase the middle of every chain too.
  for (std::int64_t k = 0; k < 500; k += 3) {
    ASSERT_TRUE(tx([&](stm::Txn& t) { return map_.erase(t, k); }));
  }
  EXPECT_TRUE(map_.check_invariants(&error)) << error;
}

TEST_F(THashMapTest, NegativeKeys) {
  EXPECT_TRUE(tx([&](stm::Txn& t) { return map_.insert(t, -42, 7); }));
  EXPECT_EQ(tx([&](stm::Txn& t) { return map_.get(t, -42); }), 7);
  EXPECT_TRUE(map_.check_invariants());
}

TEST_F(THashMapTest, AbortRollsBackInsert) {
  EXPECT_THROW(tx([&](stm::Txn& t) {
    map_.insert(t, 9, 9);
    throw std::runtime_error("abort");
  }),
               std::runtime_error);
  EXPECT_EQ(map_.unsafe_size(), 0u);
  EXPECT_FALSE(tx([&](stm::Txn& t) { return map_.contains(t, 9); }));
}

TEST_F(THashMapTest, TransactionalSizeConsistentWithShards) {
  for (std::int64_t k = 0; k < 100; ++k) {
    tx([&](stm::Txn& t) { map_.insert(t, k, k); });
  }
  EXPECT_EQ(tx([&](stm::Txn& t) { return map_.size(t); }), 100);
}

struct HashMapRandomParam {
  std::uint64_t seed;
  int key_range;
};

class THashMapRandomOps : public ::testing::TestWithParam<HashMapRandomParam> {};

TEST_P(THashMapRandomOps, MatchesUnorderedMap) {
  const auto [seed, key_range] = GetParam();
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  THashMap map(32, 2);  // small table → long chains under test
  std::unordered_map<std::int64_t, std::int64_t> model;
  util::Xoshiro256 rng(seed);
  for (int op = 0; op < 3000; ++op) {
    const auto key = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(key_range))) -
                     key_range / 2;  // include negatives
    switch (rng.below(4)) {
      case 0: {
        const bool did = stm::atomically(
            ctx, [&](stm::Txn& t) { return map.insert(t, key, op); });
        EXPECT_EQ(did, model.emplace(key, op).second);
        break;
      }
      case 1: {
        const bool was_new = stm::atomically(
            ctx, [&](stm::Txn& t) { return map.put(t, key, op); });
        EXPECT_EQ(was_new, model.find(key) == model.end());
        model[key] = op;
        break;
      }
      case 2: {
        const bool did = stm::atomically(
            ctx, [&](stm::Txn& t) { return map.erase(t, key); });
        EXPECT_EQ(did, model.erase(key) == 1);
        break;
      }
      default: {
        const auto got = stm::atomically(
            ctx, [&](stm::Txn& t) { return map.get(t, key); });
        const auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_EQ(got, std::nullopt);
        } else {
          EXPECT_EQ(got, it->second);
        }
      }
    }
  }
  EXPECT_EQ(map.unsafe_size(), model.size());
  std::string error;
  EXPECT_TRUE(map.check_invariants(&error)) << error;
  std::size_t visited = 0;
  map.unsafe_for_each([&](std::int64_t k, std::int64_t v) {
    ++visited;
    const auto it = model.find(k);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, model.size());
}

INSTANTIATE_TEST_SUITE_P(Sweeps, THashMapRandomOps,
                         ::testing::Values(HashMapRandomParam{1, 64},
                                           HashMapRandomParam{2, 16},
                                           HashMapRandomParam{3, 1024},
                                           HashMapRandomParam{4, 4}),
                         [](const auto& param_info) {
                           return "seed" + std::to_string(param_info.param.seed) +
                                  "_range" + std::to_string(param_info.param.key_range);
                         });

TEST(THashMapConcurrent, DisjointInsertsAllLand) {
  stm::Runtime rt;
  THashMap map(256, 8);
  constexpr int kThreads = 4, kPerThread = 500;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t key = t * 100000 + i;
        stm::atomically(ctx, [&](stm::Txn& tx) { map.insert(tx, key, key); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(map.unsafe_size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::string error;
  EXPECT_TRUE(map.check_invariants(&error)) << error;
}

TEST(THashMapConcurrent, ContendedChurnKeepsInvariants) {
  stm::Runtime rt;
  THashMap map(16, 2);  // tiny: heavy chain contention
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(t + 1);
      barrier.arrive_and_wait();
      for (int op = 0; op < 1000; ++op) {
        const auto key = static_cast<std::int64_t>(rng.below(64));
        if (rng.below(2) == 0) {
          stm::atomically(ctx, [&](stm::Txn& tx) { map.insert(tx, key, op); });
        } else {
          stm::atomically(ctx, [&](stm::Txn& tx) { map.erase(tx, key); });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(map.check_invariants(&error)) << error;
}

// ---------- TList ----------

class TListTest : public ::testing::Test {
 protected:
  stm::Runtime rt_;
  stm::TxnDesc& ctx_ = rt_.register_thread();
  TList list_;

  template <typename F>
  auto tx(F&& f) {
    return stm::atomically(ctx_, std::forward<F>(f));
  }
};

TEST_F(TListTest, SortedInsertAndTraversal) {
  for (std::int64_t k : {30, 10, 20, 40, 15}) {
    EXPECT_TRUE(tx([&](stm::Txn& t) { return list_.insert(t, k, k * 2); }));
  }
  EXPECT_FALSE(tx([&](stm::Txn& t) { return list_.insert(t, 20, 0); }));
  std::vector<std::int64_t> keys;
  list_.unsafe_for_each([&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{10, 15, 20, 30, 40}));
  std::string error;
  EXPECT_TRUE(list_.check_invariants(&error)) << error;
}

TEST_F(TListTest, EraseHeadMiddleTail) {
  for (std::int64_t k : {1, 2, 3, 4, 5}) {
    tx([&](stm::Txn& t) { list_.insert(t, k, k); });
  }
  EXPECT_TRUE(tx([&](stm::Txn& t) { return list_.erase(t, 1); }));  // head
  EXPECT_TRUE(tx([&](stm::Txn& t) { return list_.erase(t, 3); }));  // middle
  EXPECT_TRUE(tx([&](stm::Txn& t) { return list_.erase(t, 5); }));  // tail
  EXPECT_FALSE(tx([&](stm::Txn& t) { return list_.erase(t, 9); }));
  EXPECT_EQ(list_.unsafe_size(), 2u);
  EXPECT_TRUE(list_.check_invariants());
}

TEST_F(TListTest, NextKeyIteration) {
  for (std::int64_t k : {10, 20, 30}) {
    tx([&](stm::Txn& t) { list_.insert(t, k, k); });
  }
  auto next = [&](std::int64_t k) {
    return tx([&](stm::Txn& t) { return list_.next_key(t, k); });
  };
  EXPECT_EQ(next(0), 10);
  EXPECT_EQ(next(10), 20);
  EXPECT_EQ(next(25), 30);
  EXPECT_EQ(next(30), std::nullopt);
}

TEST_F(TListTest, GetAndContains) {
  tx([&](stm::Txn& t) { list_.insert(t, 7, 70); });
  EXPECT_TRUE(tx([&](stm::Txn& t) { return list_.contains(t, 7); }));
  EXPECT_EQ(tx([&](stm::Txn& t) { return list_.get(t, 7); }), 70);
  EXPECT_FALSE(tx([&](stm::Txn& t) { return list_.contains(t, 8); }));
}

TEST(TListRandomOps, MatchesStdMap) {
  stm::Runtime rt;
  stm::TxnDesc& ctx = rt.register_thread();
  TList list;
  std::map<std::int64_t, std::int64_t> model;
  util::Xoshiro256 rng(11);
  for (int op = 0; op < 2000; ++op) {
    const auto key = static_cast<std::int64_t>(rng.below(128));
    if (rng.below(2) == 0) {
      const bool did = stm::atomically(
          ctx, [&](stm::Txn& t) { return list.insert(t, key, op); });
      EXPECT_EQ(did, model.emplace(key, op).second);
    } else {
      const bool did = stm::atomically(
          ctx, [&](stm::Txn& t) { return list.erase(t, key); });
      EXPECT_EQ(did, model.erase(key) == 1);
    }
  }
  EXPECT_EQ(list.unsafe_size(), model.size());
  auto it = model.begin();
  list.unsafe_for_each([&](std::int64_t k, std::int64_t v) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  });
  std::string error;
  EXPECT_TRUE(list.check_invariants(&error)) << error;
}

TEST(TListConcurrent, ChurnKeepsSortedInvariant) {
  stm::Runtime rt;
  TList list;
  constexpr int kThreads = 4;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      stm::TxnDesc& ctx = rt.register_thread();
      util::Xoshiro256 rng(100 + t);
      barrier.arrive_and_wait();
      for (int op = 0; op < 800; ++op) {
        const auto key = static_cast<std::int64_t>(rng.below(96));
        if (rng.below(2) == 0) {
          stm::atomically(ctx, [&](stm::Txn& tx) { list.insert(tx, key, op); });
        } else {
          stm::atomically(ctx, [&](stm::Txn& tx) { list.erase(tx, key); });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::string error;
  EXPECT_TRUE(list.check_invariants(&error)) << error;
}

}  // namespace
}  // namespace rubic::tds

// Quickstart: the smallest complete RUBIC application.
//
// Builds a transactional red-black-tree workload, wraps it in a malleable
// worker pool, and lets the RUBIC controller tune the parallelism level
// online while the workload runs. Shows the three layers of the public API:
//
//   1. stm::Runtime / stm::atomically — the transactional memory;
//   2. workloads::Workload            — a bag of transactional tasks;
//   3. runtime::TunedProcess          — pool + monitor + controller.
//
// Run:  ./quickstart [--seconds 3] [--pool 8] [--policy rubic]
#include <chrono>
#include <cstdio>
#include <memory>

#include "src/control/factory.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/rbset_workload.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  util::Cli cli(argc, argv);
  const auto seconds = cli.get_int("seconds", 3);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  const auto policy = cli.get_string("policy", "rubic");
  cli.check_unknown();

  // 1. The STM runtime: one per process.
  stm::Runtime rt;

  // A taste of the raw transactional API before the workload machinery.
  {
    stm::TxnDesc& ctx = rt.register_thread();
    stm::TVar<std::int64_t> counter(0);
    const auto value = stm::atomically(ctx, [&](stm::Txn& tx) {
      counter.write(tx, counter.read(tx) + 41);
      return counter.read(tx) + 1;
    });
    std::printf("transactional hello: %lld\n", static_cast<long long>(value));
  }

  // 2. A malleable workload: red-black-tree set, 98%% look-ups (the paper's
  //    microbenchmark, scaled down for a quick demo).
  workloads::RbSetParams params;
  params.initial_size = 16 * 1024;
  workloads::RbSetWorkload workload(rt, params);

  // 3. The tuned process: worker pool gated by the RUBIC controller.
  control::PolicyConfig policy_config;
  policy_config.contexts = pool_size;  // pretend the machine has this many
  policy_config.pool_size = pool_size;
  auto controller = control::make_controller(policy, policy_config);

  runtime::ProcessConfig process_config;
  process_config.pool.pool_size = pool_size;
  runtime::TunedProcess process(rt, workload, *controller, process_config);

  std::printf("running '%s' under %s for %lld s...\n",
              std::string(workload.name()).c_str(),
              std::string(controller->name()).c_str(),
              static_cast<long long>(seconds));
  const runtime::RunReport report =
      process.run_for(std::chrono::milliseconds(1000 * seconds));

  std::printf("tasks completed : %llu\n",
              static_cast<unsigned long long>(report.tasks_completed));
  std::printf("throughput      : %.0f tasks/s\n", report.tasks_per_second);
  std::printf("final level     : %d of %d workers\n", report.final_level,
              pool_size);
  std::printf("mean level      : %.2f\n", report.mean_level);
  std::printf("stm commits     : %llu (aborts: %llu)\n",
              static_cast<unsigned long long>(report.stm_stats.commits),
              static_cast<unsigned long long>(report.stm_stats.total_aborts()));

  std::string error;
  if (!workload.verify(&error)) {
    std::printf("CONSISTENCY VIOLATION: %s\n", error.c_str());
    return 1;
  }
  std::printf("workload invariants verified OK\n");
  return 0;
}

// Intruder, live: the full STAMP-style intrusion-detection pipeline running
// on the real STM and the real malleable runtime, tuned online.
//
// Fragmented flows are claimed from a shared stream, transactionally
// reassembled, and scanned for attack signatures while the controller
// resizes the worker pool. At the end the detector's findings are checked
// against the generator's ground truth.
//
// Run:  ./intruder_live [--seconds 3] [--pool 8] [--policy rubic] [--flows 2048]
#include <chrono>
#include <cstdio>

#include "src/control/factory.hpp"
#include "src/runtime/process.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  util::Cli cli(argc, argv);
  const auto seconds = cli.get_int("seconds", 3);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  const auto policy = cli.get_string("policy", "rubic");
  const auto flows = cli.get_int("flows", 2048);
  cli.check_unknown();

  stm::Runtime rt;
  workloads::intruder::StreamParams stream_params;
  stream_params.flow_count = flows;
  workloads::intruder::IntruderWorkload workload(rt, stream_params);

  control::PolicyConfig policy_config;
  policy_config.contexts = pool_size;
  policy_config.pool_size = pool_size;
  auto controller = control::make_controller(policy, policy_config);

  runtime::ProcessConfig config;
  config.pool.pool_size = pool_size;
  runtime::TunedProcess process(rt, workload, *controller, config);

  std::printf("scanning a stream of %lld flows (%zu packets/epoch) under %s...\n",
              static_cast<long long>(flows),
              workload.stream().packets().size(),
              std::string(controller->name()).c_str());
  const auto report = process.run_for(std::chrono::milliseconds(1000 * seconds));

  std::printf("packets processed : %llu (%.0f/s)\n",
              static_cast<unsigned long long>(report.tasks_completed),
              report.tasks_per_second);
  std::printf("flows reassembled : %lld\n",
              static_cast<long long>(workload.flows_completed()));
  std::printf("attacks detected  : %lld (ground truth per epoch: %lld)\n",
              static_cast<long long>(workload.attacks_found()),
              static_cast<long long>(workload.stream().attack_flow_count()));
  std::printf("final level       : %d\n", report.final_level);
  std::printf("stm aborts        : %llu\n",
              static_cast<unsigned long long>(report.stm_stats.total_aborts()));

  std::string error;
  if (!workload.verify(&error)) {
    std::printf("DETECTION MISMATCH: %s\n", error.c_str());
    return 1;
  }
  std::printf("detector agrees with ground truth on every completed flow\n");
  return 0;
}

// Co-location demo: two processes space-sharing a simulated 64-context
// machine — the paper's §4.6 scenario, interactive.
//
// Prints each process's parallelism level over time as a simple text plot,
// plus the final fairness/efficiency metrics, so the convergence behaviour
// of different policies is visible at a glance:
//
//   ./colocation_sim --policy rubic                  # Fig. 10c behaviour
//   ./colocation_sim --policy ebs                    # Fig. 10b behaviour
//   ./colocation_sim --policy f2c2                   # Fig. 10a behaviour
//   ./colocation_sim --workload-a intruder --workload-b rbt --policy rubic
#include <cstdio>
#include <string>

#include "src/control/factory.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  util::Cli cli(argc, argv);
  const auto policy = cli.get_string("policy", "rubic");
  const auto workload_a = cli.get_string("workload-a", "rbt-readonly");
  const auto workload_b = cli.get_string("workload-b", workload_a);
  const auto arrival_b = cli.get_double("arrival-b", 5.0);
  const auto duration = cli.get_double("seconds", 10.0);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  cli.check_unknown();

  control::PolicyConfig policy_config;
  policy_config.contexts = contexts;
  if (policy == "equalshare") {
    policy_config.allocator =
        std::make_shared<control::CentralAllocator>(contexts);
  }
  auto controller_a = control::make_controller(policy, policy_config);
  auto controller_b = control::make_controller(policy, policy_config);

  sim::SimProcessSpec specs[2] = {
      {"P1:" + workload_a, sim::profile_by_name(workload_a),
       controller_a.get(), 0.0, std::numeric_limits<double>::infinity()},
      {"P2:" + workload_b, sim::profile_by_name(workload_b),
       controller_b.get(), arrival_b,
       std::numeric_limits<double>::infinity()},
  };
  sim::SimConfig config;
  config.contexts = contexts;
  config.duration_s = duration;
  config.allocator = policy_config.allocator;
  const sim::SimResult result = sim::run_simulation(config, specs);

  std::printf("policy=%s  machine=%d contexts  P2 arrives at t=%.1fs\n\n",
              policy.c_str(), contexts, arrival_b);
  std::printf("%6s  %4s %4s  %5s   level plot (#=P1, o=P2, | marks %d)\n",
              "t[s]", "L1", "L2", "total", contexts);

  // One text-plot row every 250 ms.
  const auto& trace_a = result.processes[0].trace;
  const auto& trace_b = result.processes[1].trace;
  const std::size_t stride =
      static_cast<std::size_t>(0.25 / config.period_s);
  for (std::size_t i = 0; i < trace_a.size(); i += stride) {
    const int l1 = trace_a[i].level;
    // P2's trace only covers its active time; align by timestamp.
    int l2 = 0;
    const double t = trace_a[i].time_s;
    for (const auto& point : trace_b) {
      if (point.time_s <= t) l2 = point.level; else break;
    }
    if (t < arrival_b) l2 = 0;
    std::string plot(100, ' ');
    const auto mark = [&](int level, char c) {
      const auto col = static_cast<std::size_t>(level * 96 / 128);
      if (level > 0 && col < plot.size()) plot[col] = c;
    };
    plot[static_cast<std::size_t>(contexts * 96 / 128)] = '|';
    mark(l1, '#');
    mark(l2, 'o');
    std::printf("%6.2f  %4d %4d  %5d   %s\n", t, l1, l2, l1 + l2,
                plot.c_str());
  }

  std::printf("\nresults over the full run:\n");
  for (const auto& process : result.processes) {
    std::printf("  %-16s speedup=%6.2f  mean level=%5.1f  efficiency=%.3f\n",
                process.name.c_str(), process.speedup, process.mean_level,
                process.efficiency);
  }
  std::printf("  system: NSBP=%.2f  total threads=%.1f  Jain=%.3f\n",
              result.nsbp, result.total_mean_threads, result.jain);
  return 0;
}

// Tutorial: bringing your own workload to the RUBIC stack.
//
// This example builds a small producer/consumer pipeline workload from
// scratch and walks through every integration point, heavily annotated:
//
//   1. shared state as TVars / transactional containers;
//   2. run_task(): one unit of work = one or more atomically() blocks;
//   3. verify(): a quiescent consistency check of your invariants;
//   4. wiring into TunedProcess so any controller tunes it online.
//
// The workload itself: producers enqueue "orders" (priced items) into a
// transactional queue, consumers dequeue and post them to per-category
// ledgers. Each task plays producer or consumer; the invariant is
// conservation — every produced order is either still queued or posted to
// exactly one ledger, and ledger totals match the order values.
//
// Run:  ./custom_workload [--seconds 2] [--pool 8]
#include <chrono>
#include <cstdio>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/util/cli.hpp"
#include "src/tds/tqueue.hpp"
#include "src/workloads/workload.hpp"

namespace {

using namespace rubic;

constexpr int kCategories = 4;

// Payloads flowing through the queue are ordinary heap objects; only the
// fields that transactions read or write after publication need TVars.
// `value` and `category` are written once before the order is enqueued
// (publication makes them visible), so plain fields are fine.
struct Order {
  std::int64_t value;
  int category;
};

class PipelineWorkload final : public workloads::Workload {
 public:
  std::string_view name() const override { return "pipeline"; }

  // One task = one pipeline step. The harness calls this repeatedly from
  // every *active* worker; RUBIC decides how many of those there are.
  void run_task(stm::TxnDesc& ctx, util::Xoshiro256& rng) override {
    if (rng.below(2) == 0) {
      // --- producer ---
      // Allocate the payload inside the transaction (tx.make), so an abort
      // reclaims it automatically and a commit publishes it atomically
      // with the enqueue.
      const auto value = static_cast<std::int64_t>(1 + rng.below(100));
      const auto category = static_cast<int>(rng.below(kCategories));
      stm::atomically(ctx, [&](stm::Txn& tx) {
        auto* order = tx.make<Order>(Order{value, category});
        queue_.enqueue(tx, order);
        produced_value_.write(tx, produced_value_.read(tx) + value);
      });
    } else {
      // --- consumer ---
      stm::atomically(ctx, [&](stm::Txn& tx) {
        Order* order = queue_.try_dequeue(tx);
        if (order == nullptr) return;  // empty: this task is a no-op
        auto& ledger = ledgers_[static_cast<std::size_t>(order->category)];
        ledger.write(tx, ledger.read(tx) + order->value);
        // The order has been fully consumed; retire it through the
        // epoch-safe free (a concurrent aborted consumer may still hold
        // the pointer invisibly).
        tx.free(order);
      });
    }
  }

  // Called after all workers stopped: check global invariants with
  // unsafe_* reads (no concurrency left, no transactions needed).
  bool verify(std::string* error) override {
    std::int64_t posted = 0;
    for (const auto& ledger : ledgers_) posted += ledger.unsafe_read();
    // Drain what is still queued.
    std::int64_t queued = 0;
    {
      // Quiescent traversal via the transactional API is also fine — one
      // last single-threaded transaction.
      stm::TxnDesc& ctx = stm::global_runtime().register_thread();
      queued = stm::atomically(ctx, [&](stm::Txn& tx) {
        std::int64_t sum = 0;
        while (Order* order = queue_.try_dequeue(tx)) {
          sum += order->value;
          tx.free(order);
        }
        return sum;
      });
    }
    if (posted + queued != produced_value_.unsafe_read()) {
      if (error != nullptr) {
        *error = "conservation violated: produced " +
                 std::to_string(produced_value_.unsafe_read()) +
                 " != posted " + std::to_string(posted) + " + queued " +
                 std::to_string(queued);
      }
      return false;
    }
    return true;
  }

  std::int64_t produced_value() const {
    return produced_value_.unsafe_read();
  }

 private:
  tds::TQueue<Order> queue_;
  stm::TVar<std::int64_t> ledgers_[kCategories];
  stm::TVar<std::int64_t> produced_value_{0};
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seconds = cli.get_int("seconds", 2);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  cli.check_unknown();

  // Integration point 4: the same three lines as every other workload.
  stm::Runtime& rt = stm::global_runtime();
  PipelineWorkload workload;
  control::RubicController controller(control::LevelBounds{1, pool_size});
  runtime::ProcessConfig config;
  config.pool.pool_size = pool_size;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report =
      process.run_for(std::chrono::milliseconds(1000 * seconds));

  std::printf("pipeline: %.0f tasks/s, mean level %.1f, produced value %lld\n",
              report.tasks_per_second, report.mean_level,
              static_cast<long long>(workload.produced_value()));
  std::string error;
  if (!workload.verify(&error)) {
    std::printf("INVARIANT VIOLATED: %s\n", error.c_str());
    return 1;
  }
  std::printf("conservation invariant verified\n");
  return 0;
}

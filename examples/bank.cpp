// Bank: a classic TM correctness demo on the RUBIC stack.
//
// Worker tasks transfer money between accounts inside transactions while a
// RUBIC-tuned pool adapts the parallelism level; an auditor task
// periodically snapshots the total balance transactionally. The invariant —
// the total never changes — holds at every point despite concurrent
// transfers, aborts and pool resizing.
//
// Run:  ./bank [--accounts 32] [--seconds 2] [--pool 8]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/control/rubic.hpp"
#include "src/runtime/process.hpp"
#include "src/stm/stm.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/workload.hpp"

namespace {

using namespace rubic;

constexpr std::int64_t kInitialBalance = 1000;

class BankWorkload final : public workloads::Workload {
 public:
  explicit BankWorkload(std::size_t accounts) : accounts_(accounts) {
    for (auto& account : accounts_) account.unsafe_write(kInitialBalance);
  }

  std::string_view name() const override { return "bank"; }

  void run_task(stm::TxnDesc& ctx, util::Xoshiro256& rng) override {
    // 1-in-64 tasks audits; the rest transfer.
    if (rng.below(64) == 0) {
      const std::int64_t total = stm::atomically(ctx, [&](stm::Txn& tx) {
        std::int64_t sum = 0;
        for (auto& account : accounts_) sum += account.read(tx);
        return sum;
      });
      if (total != expected_total()) torn_audits_.fetch_add(1);
      audits_.fetch_add(1);
      return;
    }
    const auto from = rng.below(accounts_.size());
    auto to = rng.below(accounts_.size());
    if (to == from) to = (to + 1) % accounts_.size();
    const auto amount = static_cast<std::int64_t>(rng.below(100));
    stm::atomically(ctx, [&](stm::Txn& tx) {
      const auto balance = accounts_[from].read(tx);
      // Allow negative balances: the invariant is conservation, not credit.
      accounts_[from].write(tx, balance - amount);
      accounts_[to].write(tx, accounts_[to].read(tx) + amount);
    });
  }

  bool verify(std::string* error) override {
    std::int64_t total = 0;
    for (auto& account : accounts_) total += account.unsafe_read();
    if (total != expected_total()) {
      if (error != nullptr) *error = "total balance drifted";
      return false;
    }
    if (torn_audits_.load() != 0) {
      if (error != nullptr) *error = "an audit saw a torn snapshot";
      return false;
    }
    return true;
  }

  std::int64_t expected_total() const {
    return static_cast<std::int64_t>(accounts_.size()) * kInitialBalance;
  }
  std::uint64_t audits() const { return audits_.load(); }

 private:
  std::vector<stm::TVar<std::int64_t>> accounts_;
  std::atomic<std::uint64_t> audits_{0};
  std::atomic<std::uint64_t> torn_audits_{0};
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto accounts = static_cast<std::size_t>(cli.get_int("accounts", 32));
  const auto seconds = cli.get_int("seconds", 2);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  cli.check_unknown();

  stm::Runtime rt;
  BankWorkload workload(accounts);
  control::RubicController controller(control::LevelBounds{1, pool_size});

  runtime::ProcessConfig config;
  config.pool.pool_size = pool_size;
  runtime::TunedProcess process(rt, workload, controller, config);
  const auto report = process.run_for(std::chrono::milliseconds(1000 * seconds));

  std::printf("transfers+audits: %llu tasks (%.0f/s), %llu audits\n",
              static_cast<unsigned long long>(report.tasks_completed),
              report.tasks_per_second,
              static_cast<unsigned long long>(workload.audits()));
  std::printf("aborts          : %llu\n",
              static_cast<unsigned long long>(report.stm_stats.total_aborts()));
  std::printf("final level     : %d\n", report.final_level);

  std::string error;
  if (!workload.verify(&error)) {
    std::printf("INVARIANT VIOLATED: %s\n", error.c_str());
    return 1;
  }
  std::printf("conservation invariant verified: total == %lld\n",
              static_cast<long long>(workload.expected_total()));
  return 0;
}

// Mini-STAMP driver: runs every workload in the library under one tuning
// policy, prints a results table, and verifies each workload's invariants —
// a one-command demonstration that the whole stack (STM, containers,
// workloads, malleable runtime, controllers) composes.
//
// Run:  ./stamp_suite [--seconds-each 1] [--pool 8] [--policy rubic]
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "src/control/factory.hpp"
#include "src/runtime/process.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/genome/genome_workload.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"
#include "src/workloads/kmeans/kmeans_workload.hpp"
#include "src/workloads/labyrinth/labyrinth_workload.hpp"
#include "src/workloads/montecarlo.hpp"
#include "src/workloads/rbset_workload.hpp"
#include "src/workloads/ssca2/graph_workload.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  util::Cli cli(argc, argv);
  const auto seconds_each = cli.get_int("seconds-each", 1);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  const auto policy = cli.get_string("policy", "rubic");
  cli.check_unknown();

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<workloads::Workload>(stm::Runtime&)> make;
  };
  const std::vector<Entry> suite = {
      {"rbset-98",
       [](stm::Runtime& rt) {
         workloads::RbSetParams params;
         params.initial_size = 16 * 1024;
         return std::make_unique<workloads::RbSetWorkload>(rt, params);
       }},
      {"vacation-low",
       [](stm::Runtime& rt) {
         auto params = workloads::vacation::VacationParams::low_contention();
         params.rows_per_relation = 4096;
         params.customers = 4096;
         return std::make_unique<workloads::vacation::VacationWorkload>(
             rt, params);
       }},
      {"vacation-high",
       [](stm::Runtime& rt) {
         auto params = workloads::vacation::VacationParams::high_contention();
         params.rows_per_relation = 4096;
         params.customers = 4096;
         return std::make_unique<workloads::vacation::VacationWorkload>(
             rt, params);
       }},
      {"intruder",
       [](stm::Runtime& rt) {
         workloads::intruder::StreamParams params;
         params.flow_count = 2048;
         return std::make_unique<workloads::intruder::IntruderWorkload>(
             rt, params);
       }},
      {"genome",
       [](stm::Runtime& rt) {
         workloads::genome::GenomeParams params;
         return std::make_unique<workloads::genome::GenomeWorkload>(rt,
                                                                    params);
       }},
      {"kmeans",
       [](stm::Runtime& rt) {
         workloads::kmeans::KmeansParams params;
         return std::make_unique<workloads::kmeans::KmeansWorkload>(rt,
                                                                    params);
       }},
      {"labyrinth",
       [](stm::Runtime& rt) {
         workloads::labyrinth::LabyrinthParams params;
         return std::make_unique<workloads::labyrinth::LabyrinthWorkload>(
             rt, params);
       }},
      {"ssca2-graph",
       [](stm::Runtime& rt) {
         workloads::ssca2::GraphParams params;
         return std::make_unique<workloads::ssca2::GraphWorkload>(rt, params);
       }},
      {"montecarlo-pi",
       [](stm::Runtime&) {
         return std::make_unique<workloads::MonteCarloPiWorkload>();
       }},
  };

  std::printf("%-15s %14s %10s %12s %12s  %s\n", "workload", "tasks/s",
              "mean lvl", "commits", "aborts", "verified");
  bool all_ok = true;
  for (const auto& entry : suite) {
    stm::Runtime rt;
    auto workload = entry.make(rt);
    control::PolicyConfig policy_config;
    policy_config.contexts = pool_size;
    policy_config.pool_size = pool_size;
    if (policy == "equalshare") {
      policy_config.allocator =
          std::make_shared<control::CentralAllocator>(pool_size);
      policy_config.allocator->register_process();
    }
    auto controller = control::make_controller(policy, policy_config);
    runtime::ProcessConfig config;
    config.pool.pool_size = pool_size;
    runtime::TunedProcess process(rt, *workload, *controller, config);
    const auto report =
        process.run_for(std::chrono::milliseconds(1000 * seconds_each));
    std::string error;
    const bool ok = workload->verify(&error);
    all_ok = all_ok && ok;
    std::printf("%-15s %14.0f %10.1f %12llu %12llu  %s\n", entry.name,
                report.tasks_per_second, report.mean_level,
                static_cast<unsigned long long>(report.stm_stats.commits),
                static_cast<unsigned long long>(
                    report.stm_stats.total_aborts()),
                ok ? "OK" : ("FAIL: " + error).c_str());
  }
  return all_ok ? 0 : 1;
}

// Mini-STAMP driver: runs every workload in the registry under one tuning
// policy, prints a results table, and verifies each workload's invariants —
// a one-command demonstration that the whole stack (STM, containers,
// workloads, malleable runtime, controllers) composes. The suite contents
// come from workloads::known_workloads(), the same discovery path the
// rubic_colocate launcher uses, so a workload added to the registry shows
// up here automatically.
//
// Run:  ./stamp_suite [--seconds-each 1] [--pool 8] [--policy rubic]
//                     [--stm-backend orec_swiss|norec]
//       ./stamp_suite --list-workloads / --list-controllers / --list-backends
#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "src/control/factory.hpp"
#include "src/runtime/process.hpp"
#include "src/util/cli.hpp"
#include "src/util/listing.hpp"
#include "src/workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  util::Cli cli(argc, argv);
  const auto seconds_each = cli.get_int("seconds-each", 1);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  const auto policy = cli.get_string("policy", "rubic");
  const auto backend_flag = cli.get_string("stm-backend", "");
  const bool list_workloads = cli.get_bool("list-workloads");
  const bool list_controllers = cli.get_bool("list-controllers");
  const bool list_backends = cli.get_bool("list-backends");
  cli.check_unknown();

  if (list_workloads || list_controllers || list_backends) {
    // Same shared renderer as rubic_colocate/rubic_sim/rubic_traffic —
    // sorted, deduplicated, byte-identical across binaries per registry.
    if (list_workloads) {
      util::print_name_list(workloads::known_workloads());
    }
    if (list_controllers) {
      util::print_name_list(control::known_policies());
    }
    if (list_backends) {
      std::vector<std::string_view> names;
      for (const auto k : stm::known_backends()) {
        names.push_back(stm::backend_name(k));
      }
      util::print_name_list(std::move(names));
    }
    return 0;
  }
  stm::BackendKind backend = stm::default_backend();
  if (!backend_flag.empty()) {
    const auto parsed = stm::parse_backend(backend_flag);
    if (!parsed) {
      std::fprintf(stderr, "unknown --stm-backend '%s' (try --list-backends)\n",
                   backend_flag.c_str());
      return 2;
    }
    backend = *parsed;
  }

  std::printf("%-15s %14s %10s %12s %12s  %s\n", "workload", "tasks/s",
              "mean lvl", "commits", "aborts", "verified");
  bool all_ok = true;
  for (const auto& name : workloads::known_workloads()) {
    stm::RuntimeConfig stm_config;
    stm_config.backend = backend;
    stm::Runtime rt(stm_config);
    auto workload = workloads::make_workload(name, rt);
    control::PolicyConfig policy_config;
    policy_config.contexts = pool_size;
    policy_config.pool_size = pool_size;
    policy_config.initial_backend = std::string(stm::backend_name(backend));
    if (policy == "equalshare") {
      policy_config.allocator =
          std::make_shared<control::CentralAllocator>(pool_size);
      policy_config.allocator->register_process();
    }
    auto controller = control::make_controller(policy, policy_config);
    runtime::ProcessConfig config;
    config.pool.pool_size = pool_size;
    // Wired unconditionally: contention-signal policies feed on the commit
    // ratio, and "adaptive" additionally retargets this runtime's backend
    // online.
    config.monitor.stm_runtime = &rt;
    runtime::TunedProcess process(rt, *workload, *controller, config);
    const auto report =
        process.run_for(std::chrono::milliseconds(1000 * seconds_each));
    std::string error;
    const bool ok = workload->verify(&error);
    all_ok = all_ok && ok;
    std::printf("%-15.*s %14.0f %10.1f %12llu %12llu  %s\n",
                static_cast<int>(name.size()), name.data(),
                report.tasks_per_second, report.mean_level,
                static_cast<unsigned long long>(report.stm_stats.commits),
                static_cast<unsigned long long>(
                    report.stm_stats.total_aborts()),
                ok ? "OK" : ("FAIL: " + error).c_str());
  }
  return all_ok ? 0 : 1;
}

// Real co-location: two independently-tuned processes on REAL threads.
//
// RUBIC needs no coordinator, so "two processes" is simply two independent
// (runtime, workload, pool, monitor, controller) stacks — here hosted in
// one OS process for convenience; nothing would change across fork()
// boundaries since the stacks share no state. Each monitor observes only
// its own throughput and tunes its own pool, while both pools contend for
// the machine's actual cores.
//
// On a many-core host this reproduces the paper's live experiment; on this
// repository's 1-core container it still demonstrates the full mechanism
// (gating, monitoring, unilateral adaptation) at miniature scale.
//
// Run:  ./colocation_real [--seconds 4] [--pool 8] [--policy rubic]
//                         [--arrival-b 2]
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/control/factory.hpp"
#include "src/runtime/process.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"
#include "src/workloads/rbset_workload.hpp"

int main(int argc, char** argv) {
  using namespace rubic;
  using namespace std::chrono;
  util::Cli cli(argc, argv);
  const auto seconds = cli.get_int("seconds", 4);
  const auto pool_size = static_cast<int>(cli.get_int("pool", 8));
  const auto policy = cli.get_string("policy", "rubic");
  const auto arrival_b = cli.get_int("arrival-b", 2);
  cli.check_unknown();

  control::PolicyConfig policy_config;
  policy_config.contexts =
      static_cast<int>(std::thread::hardware_concurrency());
  policy_config.pool_size = pool_size;
  if (policy == "equalshare") {
    policy_config.allocator = std::make_shared<control::CentralAllocator>(
        policy_config.contexts);
  }

  // Process A: the RB-set microbenchmark.
  stm::Runtime rt_a;
  workloads::RbSetParams rb_params;
  rb_params.initial_size = 16 * 1024;
  workloads::RbSetWorkload workload_a(rt_a, rb_params);
  auto controller_a = control::make_controller(policy, policy_config);
  runtime::ProcessConfig config_a;
  config_a.pool.pool_size = pool_size;
  runtime::TunedProcess process_a(rt_a, workload_a, *controller_a, config_a);

  std::printf("P1 (%s under %s) started on %d hardware contexts\n",
              std::string(workload_a.name()).c_str(),
              std::string(controller_a->name()).c_str(),
              policy_config.contexts);
  std::this_thread::sleep_for(seconds * 1000ms * arrival_b /
                              std::max<std::int64_t>(seconds, 1) / 2);

  // Process B arrives later (§4.6's staggered scenario): Intruder.
  stm::Runtime rt_b;
  workloads::intruder::StreamParams stream_params;
  stream_params.flow_count = 2048;
  workloads::intruder::IntruderWorkload workload_b(rt_b, stream_params);
  auto controller_b = control::make_controller(policy, policy_config);
  runtime::ProcessConfig config_b;
  config_b.pool.pool_size = pool_size;
  runtime::TunedProcess process_b(rt_b, workload_b, *controller_b, config_b);
  std::printf("P2 (%s) arrived\n", std::string(workload_b.name()).c_str());

  // Let both run, then stop B first, A second.
  std::thread b_runner([&] {
    const auto report = process_b.run_for(milliseconds(1000 * seconds / 2));
    std::printf("P2: %.0f tasks/s, mean level %.1f, final level %d\n",
                report.tasks_per_second, report.mean_level,
                report.final_level);
  });
  const auto report_a = process_a.run_for(milliseconds(1000 * seconds));
  b_runner.join();
  std::printf("P1: %.0f tasks/s, mean level %.1f, final level %d\n",
              report_a.tasks_per_second, report_a.mean_level,
              report_a.final_level);

  std::string error;
  if (!workload_a.verify(&error) || !workload_b.verify(&error)) {
    std::printf("CONSISTENCY VIOLATION: %s\n", error.c_str());
    return 1;
  }
  std::printf("both workloads verified consistent after co-located run\n");
  return 0;
}

// Figure 3: the AIMD sawtooth of a single highly-scalable process on a
// 64-context machine (alpha = 0.5).
//
// Paper claims: every time the level exceeds 64 an MD halves it back to
// ~32; the resulting average parallelism is 48 — a quarter of the machine
// (16 of 64 cores) is left unused.
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/aimd.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const auto seconds = cli.get_double("seconds", 30.0);
  const auto warmup = cli.get_double("warmup", 10.0);
  cli.check_unknown();

  bench::section("Figure 3: AIMD (alpha=0.5) level trace, one process, " +
                 std::to_string(contexts) + " contexts");

  control::AimdController aimd(control::LevelBounds{1, 2 * contexts}, 0.5);
  sim::SimProcessSpec spec{"p", sim::rbt_readonly_profile(), &aimd, 0.0,
                           std::numeric_limits<double>::infinity()};
  sim::SimConfig config;
  config.contexts = contexts;
  config.duration_s = seconds;
  config.noise_sigma = 0.0;  // Fig. 3 is the idealized model behaviour
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));

  const auto& trace = result.processes[0].trace;
  std::printf("%8s %6s  %s\n", "t[s]", "level", "");
  for (std::size_t i = 0; i < trace.size(); i += 10) {
    std::printf("%8.2f %6d  %s\n", trace[i].time_s, trace[i].level,
                bench::text_bar(trace[i].level, contexts, 48).c_str());
  }

  const double steady = bench::tail_mean_level(result.processes[0], warmup);
  std::printf("\nsteady-state average level = %.1f (paper: 48)\n", steady);
  std::printf("utilization = %.0f%% of %d contexts (paper: 75%%)\n",
              100.0 * steady / contexts, contexts);
  return 0;
}

// Figure 5: CIMD (RUBIC's growth law, alpha=0.5, beta=0.1) on a 64-context
// machine — fast initial probing, then a steady state hugging the
// oversubscription point.
//
// Paper claims: average parallelism ≈ 60, i.e. utilization improves from
// AIMD's 75% to ~94%.
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/aimd.hpp"
#include "src/control/rubic.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

double run_trace(control::Controller& controller, int contexts,
                 double seconds, double warmup, bool print) {
  sim::SimProcessSpec spec{"p", sim::rbt_readonly_profile(), &controller, 0.0,
                           std::numeric_limits<double>::infinity()};
  sim::SimConfig config;
  config.contexts = contexts;
  config.duration_s = seconds;
  config.noise_sigma = 0.0;  // idealized, as in the paper's figure
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));
  if (print) {
    const auto& trace = result.processes[0].trace;
    std::printf("%8s %6s  %s\n", "t[s]", "level", "");
    for (std::size_t i = 0; i < trace.size(); i += 10) {
      std::printf("%8.2f %6d  %s\n", trace[i].time_s, trace[i].level,
                  bench::text_bar(trace[i].level, contexts, 48).c_str());
    }
  }
  return bench::tail_mean_level(result.processes[0], warmup);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const auto seconds = cli.get_double("seconds", 30.0);
  const auto warmup = cli.get_double("warmup", 10.0);
  cli.check_unknown();

  bench::section("Figure 5: CIMD (alpha=0.5, beta=0.1) level trace, one "
                 "process, " + std::to_string(contexts) + " contexts");

  // Pure CIMD (§2.2's model): every loss is a multiplicative decrease. The
  // hybrid linear-first reduction is a §3.3 refinement layered on top (it
  // suppresses the MD sawtooth entirely in this noise-free single-process
  // setting; see bench/ablation_hybrid_reduction).
  control::RubicController cimd(
      control::LevelBounds{1, 2 * contexts},
      control::CubicParams{0.5, 0.1, control::CubicMode::kTcpConsistent},
      control::RubicController::ReductionMode::kAlwaysMultiplicative);
  const double cimd_steady =
      run_trace(cimd, contexts, seconds, warmup, /*print=*/true);

  control::AimdController aimd(control::LevelBounds{1, 2 * contexts}, 0.5);
  const double aimd_steady =
      run_trace(aimd, contexts, seconds, warmup, /*print=*/false);

  std::printf("\nsteady-state average level: CIMD = %.1f (paper: ~60), "
              "AIMD = %.1f (paper: 48)\n", cimd_steady, aimd_steady);
  std::printf("utilization: CIMD = %.0f%% (paper: 94%%), AIMD = %.0f%% "
              "(paper: 75%%)\n",
              100.0 * cimd_steady / contexts, 100.0 * aimd_steady / contexts);
  return 0;
}

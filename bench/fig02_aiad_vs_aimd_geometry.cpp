// Figure 2: convergence geometry of two malleable processes under AIAD vs
// AIMD, plotted in the (L1, L2) plane.
//
// Paper claims: starting from an arbitrary under-subscribed point X0, AIAD
// moves at 45° and oscillates between X0 and the oversubscription line
// forever — the allocation gap between the processes never closes. AIMD's
// multiplicative decrease pulls the state toward the origin-line on every
// loss, so the trajectory spirals onto the fair point (L1 == L2 == C/2).
//
// Noise-free, two identical highly-scalable processes, asymmetric start.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/aimd.hpp"
#include "src/control/ebs.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

struct Trajectory {
  std::vector<std::pair<int, int>> points;
  double final_gap = 0;
  double final_total = 0;
};

template <typename ControllerT, typename... Extra>
Trajectory run(int contexts, int start1, int start2, double seconds,
               Extra... extra) {
  control::LevelBounds bounds{1, 2 * contexts};
  ControllerT c1(bounds, extra..., start1);
  ControllerT c2(bounds, extra..., start2);
  sim::SimProcessSpec specs[2] = {
      {"p1", sim::rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", sim::rbt_readonly_profile(), &c2, 0.0,
       std::numeric_limits<double>::infinity()},
  };
  sim::SimConfig config;
  config.contexts = contexts;
  config.duration_s = seconds;
  config.noise_sigma = 0.0;  // Fig. 2 is the idealized geometry
  const auto result = sim::run_simulation(config, specs);
  Trajectory out;
  const auto& t1 = result.processes[0].trace;
  const auto& t2 = result.processes[1].trace;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    out.points.emplace_back(t1[i].level, t2[i].level);
  }
  // Mean per-round |L1 − L2| over the second half: a time-average of the
  // levels themselves would hide AIAD's anti-phase oscillation.
  double gap_sum = 0, total_sum = 0;
  std::size_t count = 0;
  for (std::size_t i = t1.size() / 2; i < t1.size(); ++i) {
    gap_sum += std::abs(t1[i].level - t2[i].level);
    total_sum += t1[i].level + t2[i].level;
    ++count;
  }
  out.final_gap = gap_sum / static_cast<double>(count);
  out.final_total = total_sum / static_cast<double>(count);
  return out;
}

void print_trajectory(const char* name, const Trajectory& trajectory,
                      std::size_t stride) {
  bench::subsection(std::string(name) + " trajectory in the (L1, L2) plane");
  std::printf("%8s %6s %6s\n", "round", "L1", "L2");
  for (std::size_t i = 0; i < trajectory.points.size(); i += stride) {
    std::printf("%8zu %6d %6d\n", i, trajectory.points[i].first,
                trajectory.points[i].second);
  }
  std::printf("steady-state mean per-round |L1-L2| = %.1f, mean L1+L2 = %.1f\n",
              trajectory.final_gap, trajectory.final_total);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const auto start1 = static_cast<int>(cli.get_int("start1", 8));
  const auto start2 = static_cast<int>(cli.get_int("start2", 40));
  const auto seconds = cli.get_double("seconds", 8.0);
  cli.check_unknown();

  bench::section("Figure 2: AIAD vs AIMD convergence from X0 = (" +
                 std::to_string(start1) + ", " + std::to_string(start2) + ")");

  const auto aiad =
      run<control::AiadController>(contexts, start1, start2, seconds);
  print_trajectory("Fig 2a: AIAD", aiad, 25);

  const auto aimd =
      run<control::AimdController>(contexts, start1, start2, seconds, 0.5);
  print_trajectory("Fig 2b: AIMD (alpha=0.5)", aimd, 25);

  std::printf("\nsummary (paper: AIAD never converges to the fair point;"
              " AIMD oscillates around it):\n");
  std::printf("  AIAD  mean per-round gap %.1f threads  (initial gap was %d)\n",
              aiad.final_gap, std::abs(start2 - start1));
  std::printf("  AIMD  mean per-round gap %.1f threads\n", aimd.final_gap);
  std::printf("  fair point would be (%d, %d)\n", contexts / 2, contexts / 2);
  return 0;
}

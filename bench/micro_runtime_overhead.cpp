// Microbenchmarks of the malleable-runtime hot paths (google-benchmark).
//
// The paper's Algorithm 1 promises a syscall-free task-acquisition fast
// path and an O(workers) monitor sampling step; these benches measure both,
// plus the controller's per-round decision cost (which bounds the monitor's
// CPU footprint at the 10 ms period).
#include <benchmark/benchmark.h>

#include <atomic>

#include "src/control/rubic.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/stm/stm.hpp"
#include "src/util/cache_aligned.hpp"
#include "src/workloads/workload.hpp"

namespace {

using namespace rubic;

// The worker's gate check (Alg. 1 line 8): one acquire load + compare.
void BM_GateCheck(benchmark::State& state) {
  alignas(util::kCacheLineSize) std::atomic<int> level{4};
  const int tid = 2;
  bool active = false;
  for (auto _ : state) {
    active = tid < level.load(std::memory_order_acquire);
    benchmark::DoNotOptimize(active);
  }
}
BENCHMARK(BM_GateCheck);

// Monitor-side throughput sampling: summing S padded per-worker counters.
void BM_MonitorSampleCounters(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::vector<util::CacheAligned<std::atomic<std::uint64_t>>> counters(workers);
  for (auto& counter : counters) counter.value.store(123);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (auto& counter : counters) {
      total += counter.value.load(std::memory_order_relaxed);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_MonitorSampleCounters)->Arg(8)->Arg(64)->Arg(128);

// One full RUBIC decision round.
void BM_RubicOnSample(benchmark::State& state) {
  control::RubicController controller(control::LevelBounds{1, 128});
  double throughput = 1000.0;
  for (auto _ : state) {
    throughput = throughput * 1.001;
    benchmark::DoNotOptimize(controller.on_sample(throughput));
  }
}
BENCHMARK(BM_RubicOnSample);

// Level change applied to a live pool (signal path, no waiting).
class NopWorkload final : public workloads::Workload {
 public:
  std::string_view name() const override { return "nop"; }
  void run_task(stm::TxnDesc&, util::Xoshiro256&) override {
    std::this_thread::yield();
  }
  bool verify(std::string*) override { return true; }
};

void BM_PoolSetLevel(benchmark::State& state) {
  static stm::Runtime rt;
  static NopWorkload workload;
  static runtime::MalleablePool pool(
      rt, workload, runtime::PoolConfig{.pool_size = 16, .initial_level = 1});
  int level = 1;
  for (auto _ : state) {
    level = level == 1 ? 9 : 1;  // swing 8 workers up/down per iteration
    pool.set_level(level);
  }
  pool.set_level(1);
}
BENCHMARK(BM_PoolSetLevel);

}  // namespace

BENCHMARK_MAIN();

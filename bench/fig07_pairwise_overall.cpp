// Figure 7: system-wide metrics for pairwise co-location — (a) total NSBP
// speed-up, (b) total running threads vs. the 64-context line, (c) total
// efficiency. Three workload pairs × five policies × 50 repetitions.
//
// Paper claims: RUBIC is best on every pair; on average it beats the
// second-best (EBS) by ~26% and the worst (Greedy) by ~500%; only RUBIC
// keeps the total thread count below the oversubscription line on every
// pair; RUBIC is ~2x / ~66x more efficient than EBS / Greedy.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 50));
  config.duration_s = cli.get_double("seconds", 10.0);
  config.contexts = static_cast<int>(cli.get_int("contexts", 64));
  cli.check_unknown();

  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  const auto policies = control::evaluated_policies();

  struct Row {
    std::string policy;
    double nsbp[3];
    double threads[3];
    double tail_threads[3];
    double efficiency[3];
    double geo_nsbp;
    double geo_eff;
  };
  std::vector<Row> rows;

  for (const auto policy : policies) {
    Row row;
    row.policy = std::string(policy);
    double nsbp_product = 1, eff_product = 1;
    for (int p = 0; p < 3; ++p) {
      const auto aggregate =
          sim::run_pair(config, row.policy, pairs[p][0], pairs[p][1]);
      row.nsbp[p] = aggregate.nsbp.mean();
      row.threads[p] = aggregate.total_threads.mean();
      row.efficiency[p] = aggregate.efficiency_product.mean();
      nsbp_product *= row.nsbp[p];
      eff_product *= row.efficiency[p];

      // Steady-state (last 40%) total threads from one traced run: the
      // run-mean dilutes the adaptive policies' race with their start-up
      // ramp, so the violation of the 64-line shows in the tail.
      control::PolicyConfig policy_config;
      policy_config.contexts = config.contexts;
      if (row.policy == "equalshare") {
        policy_config.allocator =
            std::make_shared<control::CentralAllocator>(config.contexts);
      }
      auto c1 = control::make_controller(policy, policy_config);
      auto c2 = control::make_controller(policy, policy_config);
      sim::SimProcessSpec specs[2] = {
          {pairs[p][0], sim::profile_by_name(pairs[p][0]), c1.get(), 0.0,
           std::numeric_limits<double>::infinity()},
          {pairs[p][1], sim::profile_by_name(pairs[p][1]), c2.get(), 0.0,
           std::numeric_limits<double>::infinity()},
      };
      sim::SimConfig sim_config;
      sim_config.contexts = config.contexts;
      sim_config.duration_s = config.duration_s;
      sim_config.noise_sigma = config.noise_sigma;
      sim_config.allocator = policy_config.allocator;
      const auto traced = sim::run_simulation(sim_config, specs);
      row.tail_threads[p] =
          bench::tail_mean_level(traced.processes[0],
                                 0.6 * config.duration_s) +
          bench::tail_mean_level(traced.processes[1], 0.6 * config.duration_s);
    }
    row.geo_nsbp = std::cbrt(nsbp_product);
    row.geo_eff = std::cbrt(eff_product);
    rows.push_back(row);
  }

  bench::section("Figure 7a: system total speed-up (NSBP product), " +
                 std::to_string(config.repetitions) + " reps");
  std::printf("%-12s %10s %10s %10s %10s\n", "policy", "Int/Vac", "Int/RBT",
              "Vac/RBT", "geomean");
  for (const auto& row : rows) {
    std::printf("%-12s %10.2f %10.2f %10.2f %10.2f\n", row.policy.c_str(),
                row.nsbp[0], row.nsbp[1], row.nsbp[2], row.geo_nsbp);
  }

  bench::section("Figure 7b: total s/w threads (run mean | steady tail); "
                 "oversubscription line = " + std::to_string(config.contexts));
  std::printf("%-12s %16s %16s %16s\n", "policy", "Int/Vac", "Int/RBT",
              "Vac/RBT");
  for (const auto& row : rows) {
    std::printf("%-12s %8.1f |%6.1f %8.1f |%6.1f %8.1f |%6.1f\n",
                row.policy.c_str(), row.threads[0], row.tail_threads[0],
                row.threads[1], row.tail_threads[1], row.threads[2],
                row.tail_threads[2]);
  }

  bench::section("Figure 7c: system total efficiency (product)");
  std::printf("%-12s %10s %10s %10s %10s\n", "policy", "Int/Vac", "Int/RBT",
              "Vac/RBT", "geomean");
  for (const auto& row : rows) {
    std::printf("%-12s %10.5f %10.5f %10.5f %10.5f\n", row.policy.c_str(),
                row.efficiency[0], row.efficiency[1], row.efficiency[2],
                row.geo_eff);
  }

  // The quoted text statistics.
  const Row* rubic = nullptr;
  const Row* ebs = nullptr;
  const Row* greedy = nullptr;
  for (const auto& row : rows) {
    if (row.policy == "rubic") rubic = &row;
    if (row.policy == "ebs") ebs = &row;
    if (row.policy == "greedy") greedy = &row;
  }
  bench::section("Quoted claims");
  std::printf("RUBIC vs EBS    (speed-up): +%.0f%%   (paper: +26%%)\n",
              100.0 * (rubic->geo_nsbp / ebs->geo_nsbp - 1.0));
  std::printf("RUBIC vs Greedy (speed-up): +%.0f%%  (paper: +500%%)\n",
              100.0 * (rubic->geo_nsbp / greedy->geo_nsbp - 1.0));
  std::printf("RUBIC vs EBS    (efficiency): %.1fx   (paper: ~2x)\n",
              rubic->geo_eff / ebs->geo_eff);
  std::printf("RUBIC vs Greedy (efficiency): %.0fx   (paper: ~66x)\n",
              rubic->geo_eff / greedy->geo_eff);
  return 0;
}

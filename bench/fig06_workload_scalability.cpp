// Figure 6: normalized scalability graphs of the three evaluated workloads
// (Vacation, Intruder, RBT with 98% look-ups), commit-rate vs. threads,
// each normalized to its own peak.
//
// Default mode prints the simulated machine's curves (the profiles every
// multi-process experiment runs on). --real additionally sweeps the actual
// STM workloads on this host (flat on a 1-core container; recorded for
// completeness).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/sim/machine_model.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"
#include "src/workloads/rbset_workload.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

using namespace rubic;

namespace {

void run_simulated(int contexts) {
  bench::section("Figure 6 (simulated): normalized commit-rate vs threads");
  const sim::WorkloadProfile profiles[] = {
      sim::vacation_profile(), sim::intruder_profile(), sim::rbt98_profile()};
  double peaks[3];
  for (int i = 0; i < 3; ++i) {
    peaks[i] = profiles[i].curve->peak_speedup(contexts) *
               profiles[i].sequential_rate;
  }
  std::printf("%8s %10s %10s %10s\n", "threads", "vacation", "intruder",
              "rbt-98");
  for (int level = 1; level <= contexts; ++level) {
    std::printf("%8d", level);
    for (int i = 0; i < 3; ++i) {
      const double throughput =
          profiles[i].curve->speedup(level) * profiles[i].sequential_rate;
      std::printf(" %10.3f", throughput / peaks[i]);
    }
    std::printf("\n");
  }
  std::printf("\npeaks: vacation at %d, intruder at %d, rbt-98 at %d threads\n",
              profiles[0].curve->peak_level(contexts),
              profiles[1].curve->peak_level(contexts),
              profiles[2].curve->peak_level(contexts));
}

double measure_real(stm::Runtime& rt, workloads::Workload& workload,
                    int level, int ms) {
  runtime::PoolConfig config;
  config.pool_size = level;
  config.initial_level = level;
  runtime::MalleablePool pool(rt, workload, config);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms / 4));
  const auto start_tasks = pool.total_completed();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  const auto tasks = pool.total_completed() - start_tasks;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pool.stop();
  return static_cast<double>(tasks) / seconds;
}

void run_real(int max_threads, int ms_per_level) {
  bench::section("Figure 6 (real STM on this host): tasks/s vs threads");
  std::printf("%8s %12s %12s %12s\n", "threads", "vacation", "intruder",
              "rbt-98");
  for (int level = 1; level <= max_threads; ++level) {
    double rates[3];
    {
      stm::Runtime rt;
      workloads::vacation::VacationParams params =
          workloads::vacation::VacationParams::low_contention();
      params.rows_per_relation = 4096;
      params.customers = 4096;
      workloads::vacation::VacationWorkload workload(rt, params);
      rates[0] = measure_real(rt, workload, level, ms_per_level);
    }
    {
      stm::Runtime rt;
      workloads::intruder::StreamParams params;
      params.flow_count = 1024;
      workloads::intruder::IntruderWorkload workload(rt, params);
      rates[1] = measure_real(rt, workload, level, ms_per_level);
    }
    {
      stm::Runtime rt;
      workloads::RbSetParams params;
      params.initial_size = 16 * 1024;
      workloads::RbSetWorkload workload(rt, params);
      rates[2] = measure_real(rt, workload, level, ms_per_level);
    }
    std::printf("%8d %12.0f %12.0f %12.0f\n", level, rates[0], rates[1],
                rates[2]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const bool real = cli.get_bool("real", false);
  const auto real_threads = static_cast<int>(cli.get_int("real-threads", 4));
  const auto ms_per_level = static_cast<int>(cli.get_int("ms-per-level", 200));
  cli.check_unknown();

  run_simulated(contexts);
  if (real) run_real(real_threads, ms_per_level);
  return 0;
}

// Extension: why the monitoring thread runs at raised priority (§3.1).
//
// The paper gives the monitor a higher scheduling priority so it "gets to
// perform its duty even when the system is oversubscribed". This bench
// quantifies what that buys: the staggered-arrival scenario re-run while
// each process's monitor misses a fraction of its oversubscribed rounds
// (0% = prioritized monitor, the paper's setup; 50-90% = an ordinary
// thread competing with the workers it is supposed to throttle).
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seconds = cli.get_double("seconds", 10.0);
  cli.check_unknown();

  bench::section("Extension: monitor starvation while oversubscribed "
                 "(staggered arrival, rbt-readonly)");
  std::printf("%-8s %10s %14s %14s %12s\n", "policy", "drop", "P1 tail lvl",
              "P2 tail lvl", "NSBP");
  for (const char* policy : {"rubic", "ebs"}) {
    for (const double drop : {0.0, 0.5, 0.9}) {
      control::PolicyConfig policy_config;
      policy_config.contexts = 64;
      auto c1 = control::make_controller(policy, policy_config);
      auto c2 = control::make_controller(policy, policy_config);
      sim::SimProcessSpec specs[2] = {
          {"p1", sim::rbt_readonly_profile(), c1.get(), 0.0,
           std::numeric_limits<double>::infinity()},
          {"p2", sim::rbt_readonly_profile(), c2.get(), 5.0,
           std::numeric_limits<double>::infinity()},
      };
      sim::SimConfig config;
      config.duration_s = seconds;
      config.monitor_drop_prob = drop;
      const auto result = sim::run_simulation(config, specs);
      std::printf("%-8s %9.0f%% %14.1f %14.1f %12.1f\n", policy, 100 * drop,
                  bench::tail_mean_level(result.processes[0], seconds - 2),
                  bench::tail_mean_level(result.processes[1], seconds - 2),
                  result.nsbp);
    }
  }
  std::printf("\n(fair point is 32/32; RUBIC's multiplicative steps survive "
              "lost feedback rounds, ±1 policies degrade further)\n");
  return 0;
}

// Shared helpers for the figure-reproduction bench binaries.
//
// Every bench prints (a) the series/rows the corresponding paper figure
// plots, and (b) the summary statistics quoted in the paper's text, so
// EXPERIMENTS.md can record paper-vs-measured side by side.
#pragma once

#include <cstdio>
#include <string>

#include "src/sim/sim_system.hpp"

namespace rubic::bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subsection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Mean level of a trace restricted to time >= from_s.
inline double tail_mean_level(const sim::SimProcessResult& process,
                              double from_s) {
  double sum = 0;
  int count = 0;
  for (const auto& point : process.trace) {
    if (point.time_s >= from_s) {
      sum += point.level;
      ++count;
    }
  }
  return count > 0 ? sum / count : 0.0;
}

// Renders `value` as a proportional text bar of up to `width` characters.
inline std::string text_bar(double value, double max_value, int width = 40) {
  if (max_value <= 0) return "";
  int filled = static_cast<int>(value / max_value * width + 0.5);
  if (filled < 0) filled = 0;
  if (filled > width) filled = width;
  return std::string(static_cast<std::size_t>(filled), '#');
}

}  // namespace rubic::bench

// Figure 4: the cubic growth function of Equation (1) — steady-state phase
// below L_max, probing phase above it.
//
// Prints L(Δt) after a multiplicative decrease at L_max = 64, for the
// paper's parameters (alpha = 0.8, beta = 0.1), in both interpretations of
// the printed equation (DESIGN.md D1).
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/cubic_function.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto l_max = cli.get_double("lmax", 64.0);
  const auto alpha = cli.get_double("alpha", 0.8);
  const auto beta = cli.get_double("beta", 0.1);
  const auto rounds = static_cast<int>(cli.get_int("rounds", 16));
  cli.check_unknown();

  bench::section("Figure 4: cubic growth after an MD at L_max=" +
                 std::to_string(static_cast<int>(l_max)));

  const control::CubicParams consistent{alpha, beta,
                                        control::CubicMode::kTcpConsistent};
  const control::CubicParams literal{alpha, beta,
                                     control::CubicMode::kPaperLiteral};
  std::printf("K (plateau offset): consistent=%.2f rounds, literal=%.2f rounds\n\n",
              control::cubic_plateau_offset(l_max, consistent),
              control::cubic_plateau_offset(l_max, literal));

  std::printf("%6s %14s %14s   phase\n", "dt", "L (consistent)", "L (literal)");
  for (int dt = 0; dt <= rounds; ++dt) {
    const double lc = control::cubic_level(l_max, dt, consistent);
    const double ll = control::cubic_level(l_max, dt, literal);
    const char* phase = lc < l_max - 0.5   ? "steady-state (below L_max)"
                        : lc <= l_max + 0.5 ? "plateau (~L_max)"
                                            : "probing (above L_max)";
    std::printf("%6d %14.2f %14.2f   %s\n", dt, lc, ll, phase);
  }
  std::printf("\nL(0) with consistent mode = alpha*L_max = %.1f"
              " (matches the MD restart level)\n",
              control::cubic_level(l_max, 0, consistent));
  std::printf("L(0) with literal mode   = (1-alpha)*L_max = %.1f"
              " (the printed equation's inconsistency, DESIGN.md D1)\n",
              control::cubic_level(l_max, 0, literal));
  return 0;
}

// Microbenchmarks of the STM primitives (google-benchmark).
//
// Quantifies the per-operation costs behind the paper's "negligible
// overhead in single-process cases" claim: transactional read/write vs.
// uninstrumented access, read-only vs. writing commits, and the
// single-writer counter trick of §3.1 vs. an atomic RMW.
#include <benchmark/benchmark.h>

#include <atomic>

#include "src/stm/stm.hpp"
#include "src/workloads/intruder/detector.hpp"
#include "src/tds/rbtree.hpp"

namespace {

using namespace rubic;

stm::Runtime& bench_runtime() {
  static stm::Runtime runtime;
  return runtime;
}

stm::TxnDesc& bench_ctx() {
  static thread_local stm::TxnDesc& ctx = bench_runtime().register_thread();
  return ctx;
}

void BM_UninstrumentedRead(benchmark::State& state) {
  volatile std::int64_t word = 42;
  std::int64_t sum = 0;
  for (auto _ : state) {
    sum += word;
  }
  benchmark::DoNotOptimize(sum);
}
BENCHMARK(BM_UninstrumentedRead);

void BM_TxReadOnly1(benchmark::State& state) {
  stm::TVar<std::int64_t> x(42);
  auto& ctx = bench_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stm::atomically(ctx, [&](stm::Txn& tx) { return x.read(tx); }));
  }
}
BENCHMARK(BM_TxReadOnly1);

void BM_TxReadOnly16(benchmark::State& state) {
  std::vector<stm::TVar<std::int64_t>> vars(16);
  auto& ctx = bench_ctx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stm::atomically(ctx, [&](stm::Txn& tx) {
      std::int64_t sum = 0;
      for (auto& v : vars) sum += v.read(tx);
      return sum;
    }));
  }
}
BENCHMARK(BM_TxReadOnly16);

void BM_TxWrite1(benchmark::State& state) {
  stm::TVar<std::int64_t> x(0);
  auto& ctx = bench_ctx();
  std::int64_t i = 0;
  for (auto _ : state) {
    stm::atomically(ctx, [&](stm::Txn& tx) { x.write(tx, ++i); });
  }
}
BENCHMARK(BM_TxWrite1);

void BM_TxReadModifyWrite8(benchmark::State& state) {
  std::vector<stm::TVar<std::int64_t>> vars(8);
  auto& ctx = bench_ctx();
  for (auto _ : state) {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      for (auto& v : vars) v.write(tx, v.read(tx) + 1);
    });
  }
}
BENCHMARK(BM_TxReadModifyWrite8);

void BM_RbTreeLookupTx(benchmark::State& state) {
  static tds::RbTree tree;
  static bool populated = [] {
    auto& ctx = bench_ctx();
    for (std::int64_t i = 0; i < 4096; ++i) {
      stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, i * 2, i); });
    }
    return true;
  }();
  (void)populated;
  auto& ctx = bench_ctx();
  std::int64_t key = 0;
  for (auto _ : state) {
    key = (key + 101) % 8192;
    benchmark::DoNotOptimize(stm::atomically(
        ctx, [&](stm::Txn& tx) { return tree.contains(tx, key); }));
  }
}
BENCHMARK(BM_RbTreeLookupTx);

void BM_RbTreeInsertEraseTx(benchmark::State& state) {
  tds::RbTree tree;
  auto& ctx = bench_ctx();
  std::int64_t key = 0;
  for (auto _ : state) {
    key = (key + 7) % 1024;
    stm::atomically(ctx, [&](stm::Txn& tx) { tree.insert(tx, key, key); });
    stm::atomically(ctx, [&](stm::Txn& tx) { tree.erase(tx, key); });
  }
}
BENCHMARK(BM_RbTreeInsertEraseTx);

// Encounter-time vs commit-time locking on an 8-word read-modify-write
// transaction (the SwissTM/TL2 design axis; see stm::LockTiming).
void BM_LockTimingCommitTime(benchmark::State& state) {
  static stm::Runtime lazy_rt = [] {
    stm::RuntimeConfig cfg;
    cfg.lock_timing = stm::LockTiming::kCommitTime;
    return stm::Runtime(cfg);
  }();
  static thread_local stm::TxnDesc& ctx = lazy_rt.register_thread();
  std::vector<stm::TVar<std::int64_t>> vars(8);
  for (auto _ : state) {
    stm::atomically(ctx, [&](stm::Txn& tx) {
      for (auto& v : vars) v.write(tx, v.read(tx) + 1);
    });
  }
}
BENCHMARK(BM_LockTimingCommitTime);

// §3.1's counter design: single-writer load+store vs. a fetch_add.
void BM_CounterSingleWriter(benchmark::State& state) {
  std::atomic<std::uint64_t> counter{0};
  for (auto _ : state) {
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }
  benchmark::DoNotOptimize(counter.load());
}
BENCHMARK(BM_CounterSingleWriter);

void BM_CounterAtomicRmw(benchmark::State& state) {
  std::atomic<std::uint64_t> counter{0};
  for (auto _ : state) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
  benchmark::DoNotOptimize(counter.load());
}
BENCHMARK(BM_CounterAtomicRmw);

// Address → orec mapping (one multiply + shift + load).
void BM_OrecLookup(benchmark::State& state) {
  stm::OrecTable table;
  std::vector<std::uint64_t> words(4096);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&table.for_address(&words[index]));
    index = (index + 8) & 4095;  // walk stripes: no constant folding
  }
}
BENCHMARK(BM_OrecLookup);

// Signature scan over a typical reassembled payload (Aho-Corasick: one
// pass regardless of dictionary size).
void BM_DetectorScan(benchmark::State& state) {
  std::string payload;
  for (int i = 0; i < 8; ++i) {
    payload += "perfectly ordinary network traffic with nothing to see ";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::intruder::contains_attack(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DetectorScan);

}  // namespace

BENCHMARK_MAIN();

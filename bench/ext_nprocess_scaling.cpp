// Extension (beyond the paper): N co-located processes, N = 1..8.
//
// The paper evaluates pairs; RUBIC's decentralized design claims nothing
// special about N = 2. This bench sweeps the process count on the same
// machine and reports the NSBP product, Jain fairness across speed-ups,
// and the total thread count vs. the oversubscription line, for RUBIC and
// the adaptive baselines.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 20));
  config.duration_s = cli.get_double("seconds", 10.0);
  config.contexts = static_cast<int>(cli.get_int("contexts", 64));
  const auto max_n = static_cast<int>(cli.get_int("max-n", 8));
  cli.check_unknown();

  bench::section("Extension: N identical rbt-readonly processes on " +
                 std::to_string(config.contexts) + " contexts");
  std::printf("%-10s %4s %12s %10s %12s\n", "policy", "N", "NSBP", "Jain",
              "total thr");
  for (const char* policy : {"rubic", "ebs", "f2c2", "equalshare"}) {
    for (int n = 1; n <= max_n; n *= 2) {
      std::vector<sim::ProcessSetup> setups(
          static_cast<std::size_t>(n),
          sim::ProcessSetup{policy, "rbt-readonly", 0.0,
                            std::numeric_limits<double>::infinity()});
      const auto aggregate = sim::run_experiment(config, setups);
      std::printf("%-10s %4d %12.3g %10.3f %12.1f\n", policy, n,
                  aggregate.nsbp.mean(), aggregate.jain.mean(),
                  aggregate.total_threads.mean());
    }
  }
  std::printf("\n(ideal for N processes on 64 contexts: total ≈ 64, Jain ≈ 1,"
              " NSBP ≈ S(64/N)^N)\n");
  return 0;
}

// Extension: distribution of convergence times (the paper says RUBIC's
// convergence is "impressively fast" without quantifying it).
//
// Two metrics, each over many seeds of the §4.6 staggered-arrival scenario:
//   * cold-start time — rounds for a lone process to first reach 90% of the
//     machine capacity;
//   * re-fair time — after P2's arrival, rounds until both processes stay
//     within ±25% of the fair share for 50 consecutive rounds.
// Reported as min / median / p90 / max across seeds, per policy.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

struct Quantiles {
  double min, median, p90, max;
};

Quantiles quantiles(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  auto at = [&](double q) {
    return values[static_cast<std::size_t>(q * (values.size() - 1) + 0.5)];
  };
  return {values.front(), at(0.5), at(0.9), values.back()};
}

void report(const char* label, const std::vector<double>& samples,
            int never_count) {
  if (samples.empty()) {
    std::printf("  %-22s never converged in any run\n", label);
    return;
  }
  const auto q = quantiles(samples);
  std::printf("  %-22s min %5.2fs  median %5.2fs  p90 %5.2fs  max %5.2fs"
              "  (never: %d)\n",
              label, q.min, q.median, q.p90, q.max, never_count);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto seeds = static_cast<int>(cli.get_int("seeds", 30));
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  cli.check_unknown();

  bench::section("Extension: convergence-time distribution over " +
                 std::to_string(seeds) + " seeds (rbt-readonly, arrival at 5s)");

  for (const char* policy : {"rubic", "ebs", "f2c2"}) {
    std::vector<double> cold_start;
    std::vector<double> refair;
    int cold_never = 0, refair_never = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      control::PolicyConfig policy_config;
      policy_config.contexts = contexts;
      auto c1 = control::make_controller(policy, policy_config);
      auto c2 = control::make_controller(policy, policy_config);
      sim::SimProcessSpec specs[2] = {
          {"p1", sim::rbt_readonly_profile(), c1.get(), 0.0,
           std::numeric_limits<double>::infinity()},
          {"p2", sim::rbt_readonly_profile(), c2.get(), 5.0,
           std::numeric_limits<double>::infinity()},
      };
      sim::SimConfig config;
      config.contexts = contexts;
      config.duration_s = 10.0;
      config.seed = 1000 + static_cast<std::uint64_t>(seed);
      const auto result = sim::run_simulation(config, specs);
      const auto& t1 = result.processes[0].trace;
      const auto& t2 = result.processes[1].trace;

      // Cold start: first time P1 ≥ 90% of contexts.
      bool found = false;
      for (const auto& point : t1) {
        if (point.level >= contexts * 9 / 10) {
          cold_start.push_back(point.time_s);
          found = true;
          break;
        }
      }
      if (!found) ++cold_never;

      // Re-fair: both within ±25% of contexts/2 for 50 consecutive rounds
      // after the arrival.
      const int fair = contexts / 2;
      const int tolerance = fair / 4;
      int streak = 0;
      found = false;
      for (std::size_t i = 0; i < t2.size(); ++i) {
        // Align P1's post-arrival trace with P2's (P2's trace starts at
        // its arrival round).
        const auto p1_index = t1.size() - t2.size() + i;
        const bool both_fair =
            std::abs(t1[p1_index].level - fair) <= tolerance &&
            std::abs(t2[i].level - fair) <= tolerance;
        streak = both_fair ? streak + 1 : 0;
        if (streak == 50) {
          refair.push_back(t2[i].time_s - 5.0 - 0.5);
          found = true;
          break;
        }
      }
      if (!found) ++refair_never;
    }
    std::printf("%s:\n", policy);
    report("cold start to 90%", cold_start, cold_never);
    report("re-fair after arrival", refair, refair_never);
  }
  return 0;
}

// Figure 9: single-process execution — per-workload speed-up, thread count
// and allocation std-dev for every policy. (Greedy and EqualShare are
// identical here: both give the lone process the whole machine.)
//
// Paper claims: RUBIC's speed-up is always comparable to the best policy,
// with slightly fewer threads, and it is on average the most stable;
// EBS's stability is close behind.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 50));
  config.duration_s = cli.get_double("seconds", 10.0);
  config.contexts = static_cast<int>(cli.get_int("contexts", 64));
  cli.check_unknown();

  const char* const workloads[] = {"vacation", "intruder", "rbt"};
  const char* const policies[] = {"greedy", "f2c2", "ebs", "rubic"};

  struct Cell {
    double speedup, level, stddev;
  };
  Cell cells[4][3];
  for (int pi = 0; pi < 4; ++pi) {
    for (int wi = 0; wi < 3; ++wi) {
      const auto aggregate =
          sim::run_single(config, policies[pi], workloads[wi]);
      cells[pi][wi] = {aggregate.processes[0].speedup.mean(),
                       aggregate.processes[0].mean_level.mean(),
                       aggregate.processes[0].mean_level.stddev()};
    }
  }

  const auto print_table = [&](const char* title, auto select,
                               const char* fmt) {
    bench::section(title);
    std::printf("%-12s %12s %12s %12s\n", "policy", workloads[0], workloads[1],
                workloads[2]);
    for (int pi = 0; pi < 4; ++pi) {
      std::printf("%-12s", policies[pi]);
      for (int wi = 0; wi < 3; ++wi) std::printf(fmt, select(cells[pi][wi]));
      std::printf("\n");
    }
  };

  print_table("Figure 9a: single-process speed-up (greedy == equalshare)",
              [](const Cell& cell) { return cell.speedup; }, " %12.2f");
  print_table("Figure 9b: mean thread count",
              [](const Cell& cell) { return cell.level; }, " %12.1f");
  print_table("Figure 9c: allocation std-dev across reps (lower is better)",
              [](const Cell& cell) { return cell.stddev; }, " %12.2f");

  bench::section("Quoted claims");
  for (int wi = 0; wi < 3; ++wi) {
    double best = 0;
    for (int pi = 0; pi < 4; ++pi) best = std::max(best, cells[pi][wi].speedup);
    std::printf("%-10s RUBIC speed-up = %.0f%% of best policy"
                " (paper: always comparable to the best)\n",
                workloads[wi], 100.0 * cells[3][wi].speedup / best);
  }
  double rubic_sd = 0, ebs_sd = 0, f2c2_sd = 0;
  for (int wi = 0; wi < 3; ++wi) {
    rubic_sd += cells[3][wi].stddev;
    ebs_sd += cells[2][wi].stddev;
    f2c2_sd += cells[1][wi].stddev;
  }
  std::printf("mean std-dev: RUBIC %.2f, EBS %.2f, F2C2 %.2f"
              " (paper: RUBIC most stable on average)\n",
              rubic_sd / 3, ebs_sd / 3, f2c2_sd / 3);
  return 0;
}

// Ablation: sensitivity of RUBIC to the α (multiplicative-decrease factor)
// and β (cubic growth scale) constants. The paper fixes α = 0.8, β = 0.1
// "to obtain the best results" (§4.3) without showing the sweep — this
// bench regenerates it over the full pairwise suite (geomean NSBP across
// the three workload pairs).
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 20));
  config.duration_s = cli.get_double("seconds", 10.0);
  cli.check_unknown();

  const double alphas[] = {0.5, 0.6, 0.7, 0.8, 0.9};
  const double betas[] = {0.05, 0.1, 0.2, 0.4};
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};

  bench::section("Ablation: pairwise geomean NSBP over (alpha, beta)");
  std::printf("%8s", "alpha\\beta");
  for (const double beta : betas) std::printf(" %9.2f", beta);
  std::printf("\n");

  double best = 0, best_alpha = 0, best_beta = 0;
  double paper_value = 0;
  for (const double alpha : alphas) {
    std::printf("%8.2f  ", alpha);
    for (const double beta : betas) {
      config.cubic.alpha = alpha;
      config.cubic.beta = beta;
      double product = 1;
      for (const auto& pair : pairs) {
        product *= sim::run_pair(config, "rubic", pair[0], pair[1]).nsbp.mean();
      }
      const double geomean = std::cbrt(product);
      std::printf(" %9.2f", geomean);
      if (geomean > best) {
        best = geomean;
        best_alpha = alpha;
        best_beta = beta;
      }
      if (alpha == 0.8 && beta == 0.1) paper_value = geomean;
    }
    std::printf("\n");
  }
  std::printf("\nbest grid point: alpha=%.2f beta=%.2f (geomean %.2f)\n",
              best_alpha, best_beta, best);
  std::printf("paper's choice alpha=0.8 beta=0.1: geomean %.2f "
              "(%.1f%% of grid best)\n",
              paper_value, 100.0 * paper_value / best);
  return 0;
}

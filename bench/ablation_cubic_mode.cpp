// Ablation: the Eq. (1) discrepancy (DESIGN.md D1) — paper-literal
// K = ∛(L_max·α/β) vs. TCP-consistent K = ∛(L_max·(1−α)/β).
//
// Compares the two modes on (a) single-process convergence/steady-state
// utilization and (b) the pairwise suite, at the paper's α=0.8, β=0.1.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/rubic.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

void single_process(control::CubicMode mode, const char* label) {
  control::RubicController controller(
      control::LevelBounds{1, 128},
      control::CubicParams{0.8, 0.1, mode});
  sim::SimProcessSpec spec{"p", sim::rbt_readonly_profile(), &controller, 0.0,
                           std::numeric_limits<double>::infinity()};
  sim::SimConfig config;
  config.duration_s = 20.0;
  config.noise_sigma = 0.0;
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));
  // Rounds to first reach the machine size.
  int rounds_to_64 = -1;
  for (std::size_t i = 0; i < result.processes[0].trace.size(); ++i) {
    if (result.processes[0].trace[i].level >= 64) {
      rounds_to_64 = static_cast<int>(i);
      break;
    }
  }
  std::printf("  %-16s rounds-to-64: %4d   steady mean level: %.1f\n", label,
              rounds_to_64,
              bench::tail_mean_level(result.processes[0], 10.0));
}

double pairwise_geomean(control::CubicMode mode, int reps) {
  sim::ExperimentConfig config;
  config.repetitions = reps;
  config.cubic = control::CubicParams{0.8, 0.1, mode};
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  double product = 1;
  for (const auto& pair : pairs) {
    product *= sim::run_pair(config, "rubic", pair[0], pair[1]).nsbp.mean();
  }
  return std::cbrt(product);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 20));
  cli.check_unknown();

  bench::section("Ablation: Eq. (1) cubic-mode interpretations (alpha=0.8, "
                 "beta=0.1)");
  std::printf("single process, 64 contexts, noise-free:\n");
  single_process(control::CubicMode::kTcpConsistent, "tcp-consistent");
  single_process(control::CubicMode::kPaperLiteral, "paper-literal");

  std::printf("\npairwise suite geomean NSBP (%d reps):\n", reps);
  std::printf("  %-16s %.2f\n", "tcp-consistent",
              pairwise_geomean(control::CubicMode::kTcpConsistent, reps));
  std::printf("  %-16s %.2f\n", "paper-literal",
              pairwise_geomean(control::CubicMode::kPaperLiteral, reps));
  std::printf("\n(the max(L_cubic, L+1) guard of Alg. 2 line 11 masks the "
              "literal mode's too-low restart, so the two stay close; the "
              "consistent mode re-reaches L_max sooner after each MD)\n");
  return 0;
}

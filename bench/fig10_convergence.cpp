// Figure 10: number of active threads over time for two homogeneous
// processes with staggered arrival (P2 joins at t=5s of a 10s run),
// conflict-free red-black-tree workload, under F2C2 / EBS / RUBIC.
//
// Paper claims: (a) F2C2 overshoots past the context count, gets stuck on
// the plateau, and after P2's arrival both race; (b) EBS converges to 64
// alone but post-arrival the pair never finds the fair 32/32 allocation;
// (c) RUBIC converges alone to ~64 quickly, and on arrival P2's cubic
// probing coincides with P1's multiplicative decreases so both settle
// around 32 almost immediately.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/metrics/timeseries.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const auto seconds = cli.get_double("seconds", 10.0);
  const auto arrival = cli.get_double("arrival", 5.0);
  const auto stride_s = cli.get_double("stride", 0.1);
  // --csv PREFIX writes PREFIX_<policy>.csv with the full-resolution traces.
  const auto csv_prefix = cli.get_string("csv", "");
  cli.check_unknown();

  for (const char* policy : {"f2c2", "ebs", "rubic"}) {
    control::PolicyConfig policy_config;
    policy_config.contexts = contexts;
    auto c1 = control::make_controller(policy, policy_config);
    auto c2 = control::make_controller(policy, policy_config);
    sim::SimProcessSpec specs[2] = {
        {"P1", sim::rbt_readonly_profile(), c1.get(), 0.0,
         std::numeric_limits<double>::infinity()},
        {"P2", sim::rbt_readonly_profile(), c2.get(), arrival,
         std::numeric_limits<double>::infinity()},
    };
    sim::SimConfig config;
    config.contexts = contexts;
    config.duration_s = seconds;
    const auto result = sim::run_simulation(config, specs);

    bench::section("Figure 10" +
                   std::string(policy == std::string("f2c2")  ? "a"
                               : policy == std::string("ebs") ? "b"
                                                              : "c") +
                   ": " + policy + " — active threads over time");
    std::printf("%8s %6s %6s %7s\n", "t[s]", "P1", "P2", "total");
    const auto& t1 = result.processes[0].trace;
    const auto& t2 = result.processes[1].trace;
    if (!csv_prefix.empty()) {
      metrics::TimeSeries series({"t", "p1_level", "p2_level", "total"});
      for (std::size_t i = 0; i < t1.size(); ++i) {
        const double now = t1[i].time_s;
        int l2 = 0;
        for (const auto& point : t2) {
          if (point.time_s <= now) l2 = point.level; else break;
        }
        if (now < arrival) l2 = 0;
        series.append({now, static_cast<double>(t1[i].level),
                       static_cast<double>(l2),
                       static_cast<double>(t1[i].level + l2)});
      }
      const std::string path = csv_prefix + "_" + policy + ".csv";
      if (series.write_csv_file(path)) {
        std::printf("(full trace written to %s)\n", path.c_str());
      }
    }
    const auto stride = static_cast<std::size_t>(stride_s / config.period_s);
    for (std::size_t i = 0; i < t1.size(); i += stride) {
      const double now = t1[i].time_s;
      int l2 = 0;
      for (const auto& point : t2) {
        if (point.time_s <= now) l2 = point.level; else break;
      }
      if (now < arrival) l2 = 0;
      std::printf("%8.2f %6d %6d %7d\n", now, t1[i].level, l2,
                  t1[i].level + l2);
    }
    const double p1_before =
        bench::tail_mean_level(result.processes[0], arrival - 2.0) -
        bench::tail_mean_level(result.processes[0], arrival);
    (void)p1_before;
    double pre_sum = 0;
    int pre_count = 0;
    for (const auto& point : t1) {
      if (point.time_s >= arrival - 3.0 && point.time_s < arrival) {
        pre_sum += point.level;
        ++pre_count;
      }
    }
    std::printf(
        "summary: P1 pre-arrival mean %.1f; post-arrival tail means "
        "P1 %.1f, P2 %.1f (fair point: %d each)\n",
        pre_sum / pre_count,
        bench::tail_mean_level(result.processes[0], seconds - 2.0),
        bench::tail_mean_level(result.processes[1], seconds - 2.0),
        contexts / 2);
  }
  return 0;
}

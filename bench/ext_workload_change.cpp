// Extension (beyond the paper's figures, motivated by §3.3's rationale):
// a running process *changes workload* mid-run — its scalability curve
// flips from highly scalable (rbt-like) to poorly scalable (intruder-like)
// or vice versa — and the controller must re-converge from its throughput
// signal alone.
//
// RUBIC's hybrid reduction was designed for exactly this case: a loss can
// mean "passed the optimal level" or "the workload changed" (§3.3), and the
// multiplicative phase plus cubic re-probe handles both directions.
#include <cstdio>
#include <memory>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/sim/sim_system.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

void run_direction(const char* policy, const char* from, const char* to,
                   double change_s, double seconds) {
  control::PolicyConfig policy_config;
  policy_config.contexts = 64;
  auto controller = control::make_controller(policy, policy_config);
  sim::SimProcessSpec spec;
  spec.name = policy;
  spec.profile = sim::profile_by_name(from);
  spec.controller = controller.get();
  spec.change_s = change_s;
  spec.profile_after = sim::profile_by_name(to);
  sim::SimConfig config;
  config.duration_s = seconds;
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));

  const int peak_before = spec.profile.curve->peak_level(64);
  const int peak_after = spec.profile_after->curve->peak_level(64);
  // Re-convergence time: first time after the change the level stays within
  // ±25% of the new peak for 50 consecutive rounds.
  const auto& trace = result.processes[0].trace;
  double settled_at = -1;
  int in_band = 0;
  for (const auto& point : trace) {
    if (point.time_s < change_s) continue;
    const bool near = std::abs(point.level - peak_after) <=
                      std::max(2, peak_after / 4);
    in_band = near ? in_band + 1 : 0;
    if (in_band == 50) {
      settled_at = point.time_s - 50 * config.period_s - change_s;
      break;
    }
  }
  double pre_sum = 0;
  int pre_count = 0;
  for (const auto& point : trace) {
    if (point.time_s >= change_s - 2.0 && point.time_s < change_s) {
      pre_sum += point.level;
      ++pre_count;
    }
  }
  const std::string settled =
      settled_at < 0 ? "never" : std::to_string(settled_at).substr(0, 4) + "s";
  std::printf("  %-8s %-12s -> %-12s  peaks %2d -> %2d   pre-change mean %5.1f"
              "   post tail mean %5.1f   re-converged in %s\n",
              policy, from, to, peak_before, peak_after,
              pre_count > 0 ? pre_sum / pre_count : 0.0,
              bench::tail_mean_level(result.processes[0], seconds - 2.0),
              settled.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto change_s = cli.get_double("change", 5.0);
  const auto seconds = cli.get_double("seconds", 10.0);
  cli.check_unknown();

  bench::section("Extension: workload change at t=" + std::to_string(change_s) +
                 "s (single process, 64 contexts)");
  for (const char* policy : {"rubic", "ebs", "f2c2", "profiled"}) {
    run_direction(policy, "rbt", "intruder", change_s, seconds);
    run_direction(policy, "intruder", "rbt", change_s, seconds);
  }
  std::printf("\n(shrinking direction needs fast de-allocation — RUBIC's "
              "linear-then-MD; growing direction needs re-probing — RUBIC's "
              "cubic phase. ±1 policies do both at 1 thread per 10 ms.)\n");
  return 0;
}

// Figure 1: Intruder's throughput vs. thread count on a 64-context machine.
//
// Paper claims: the peak is at 7 parallel threads; past the peak the
// throughput deteriorates until, at 64 threads, it is less than half of the
// sequential execution's.
//
// Default mode evaluates the simulated machine model (the substrate all
// multi-process figures run on). --real sweeps the actual STM Intruder
// workload on this host with a fixed-level pool; on a 1-core container the
// real curve is flat-to-declining and is reported for completeness only
// (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/sim/machine_model.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/intruder/intruder_workload.hpp"

using namespace rubic;

namespace {

void run_simulated(int contexts) {
  bench::section("Figure 1 (simulated machine): Intruder commit-rate vs threads");
  const auto profile = sim::intruder_profile();
  sim::MachineModel machine(contexts);
  const int peak = profile.curve->peak_level(contexts);
  const double peak_throughput =
      machine.throughput(profile, peak, peak);
  std::printf("%8s %14s %10s  %s\n", "threads", "commits/s", "norm", "");
  for (int level = 1; level <= contexts; ++level) {
    const double throughput = machine.throughput(profile, level, level);
    std::printf("%8d %14.0f %9.3f  %s\n", level, throughput,
                throughput / peak_throughput,
                bench::text_bar(throughput, peak_throughput).c_str());
  }
  std::printf("\npeak at %d threads (paper: 7)\n", peak);
  std::printf("throughput at %d threads = %.2fx sequential (paper: < 0.5x)\n",
              contexts, profile.curve->speedup(contexts));
}

void run_real(int max_threads, int ms_per_level) {
  bench::section("Figure 1 (real STM on this host): Intruder tasks/s vs threads");
  std::printf("(host parallelism is what it is — on a 1-core container this "
              "curve cannot show the 64-core shape)\n");
  std::printf("%8s %14s\n", "threads", "tasks/s");
  double best = 0;
  int best_level = 1;
  for (int level = 1; level <= max_threads; ++level) {
    stm::Runtime rt;
    workloads::intruder::StreamParams params;
    params.flow_count = 1024;
    workloads::intruder::IntruderWorkload workload(rt, params);
    runtime::PoolConfig pool_config;
    pool_config.pool_size = level;
    pool_config.initial_level = level;
    runtime::MalleablePool pool(rt, workload, pool_config);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_per_level / 4));
    const auto start_tasks = pool.total_completed();
    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_per_level));
    const auto tasks = pool.total_completed() - start_tasks;
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    pool.stop();
    const double rate = static_cast<double>(tasks) / seconds;
    std::printf("%8d %14.0f\n", level, rate);
    if (rate > best) {
      best = rate;
      best_level = level;
    }
  }
  std::printf("\nmeasured peak at %d threads on this host\n", best_level);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto contexts = static_cast<int>(cli.get_int("contexts", 64));
  const bool real = cli.get_bool("real", false);
  const auto real_threads = static_cast<int>(cli.get_int("real-threads", 8));
  const auto ms_per_level = static_cast<int>(cli.get_int("ms-per-level", 200));
  cli.check_unknown();

  run_simulated(contexts);
  if (real) run_real(real_threads, ms_per_level);
  return 0;
}

// Ablation: RUBIC's hybrid reduction (§3.3) — linear first, multiplicative
// only if the loss persists — vs. always-multiplicative and always-linear
// variants.
//
// The paper argues the hybrid avoids unnecessary MDs (transient dips cost
// only −2 threads) while still converging in multi-process settings (which
// needs MD, §2.1). The two extremes show each half of that argument
// failing: always-MD over-reacts to noise in single-process steady state;
// always-linear never converges to a fair share when contended.
#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "src/control/rubic.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

namespace {

using ReductionMode = control::RubicController::ReductionMode;

std::unique_ptr<control::Controller> make_variant(
    const control::PolicyConfig& policy_config, ReductionMode mode) {
  return std::make_unique<control::RubicController>(
      control::LevelBounds{1, policy_config.effective_pool()},
      policy_config.cubic, mode);
}

double pairwise_geomean(ReductionMode mode, int reps) {
  sim::ExperimentConfig config;
  config.repetitions = reps;
  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  double product = 1;
  for (const auto& pair : pairs) {
    const sim::ProcessSetup setups[2] = {
        {"rubic", pair[0], 0.0, std::numeric_limits<double>::infinity()},
        {"rubic", pair[1], 0.0, std::numeric_limits<double>::infinity()},
    };
    const auto aggregate = sim::run_experiment(
        config, setups,
        [&](const control::PolicyConfig& policy_config,
            const sim::ProcessSetup&, std::size_t) {
          return make_variant(policy_config, mode);
        });
    product *= aggregate.nsbp.mean();
  }
  return std::cbrt(product);
}

double single_steady_level(ReductionMode mode, double noise) {
  control::RubicController controller(control::LevelBounds{1, 128},
                                      control::CubicParams{}, mode);
  sim::SimProcessSpec spec{"p", sim::rbt_readonly_profile(), &controller, 0.0,
                           std::numeric_limits<double>::infinity()};
  sim::SimConfig config;
  config.duration_s = 20.0;
  config.noise_sigma = noise;
  const auto result =
      sim::run_simulation(config, std::span<sim::SimProcessSpec>(&spec, 1));
  return bench::tail_mean_level(result.processes[0], 10.0);
}

double staggered_fair_gap(ReductionMode mode) {
  control::RubicController c1(control::LevelBounds{1, 128},
                              control::CubicParams{}, mode);
  control::RubicController c2(control::LevelBounds{1, 128},
                              control::CubicParams{}, mode);
  sim::SimProcessSpec specs[2] = {
      {"p1", sim::rbt_readonly_profile(), &c1, 0.0,
       std::numeric_limits<double>::infinity()},
      {"p2", sim::rbt_readonly_profile(), &c2, 5.0,
       std::numeric_limits<double>::infinity()},
  };
  sim::SimConfig config;
  config.duration_s = 10.0;
  const auto result = sim::run_simulation(config, specs);
  return std::abs(bench::tail_mean_level(result.processes[0], 8.0) -
                  bench::tail_mean_level(result.processes[1], 8.0));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto reps = static_cast<int>(cli.get_int("reps", 20));
  cli.check_unknown();

  const struct {
    ReductionMode mode;
    const char* label;
  } variants[] = {
      {ReductionMode::kHybridPaper, "hybrid (paper)"},
      {ReductionMode::kAlwaysMultiplicative, "always-MD"},
      {ReductionMode::kAlwaysLinear, "always-linear"},
  };

  bench::section("Ablation: reduction-policy variants (§3.3)");
  std::printf("%-16s %14s %18s %16s\n", "variant", "pairwise NSBP",
              "single steady lvl", "arrival |L1-L2|");
  for (const auto& variant : variants) {
    std::printf("%-16s %14.2f %18.1f %16.1f\n", variant.label,
                pairwise_geomean(variant.mode, reps),
                single_steady_level(variant.mode, 0.005),
                staggered_fair_gap(variant.mode));
  }
  std::printf("\n(single steady lvl: higher is better utilization under "
              "noise; arrival gap: smaller is fairer after a staggered "
              "arrival)\n");
  return 0;
}

// Extension (beyond the paper): policy co-existence — what happens when a
// RUBIC-tuned process shares the machine with an EBS-, F2C2- or
// Greedy-tuned one?
//
// This is the TM analogue of TCP friendliness (the paper inherits CUBIC
// from exactly that literature): a well-behaved backoff policy risks being
// starved by a greedy peer. The bench quantifies how much speed-up each
// side gets, pairwise over the policy matrix, on the highly scalable
// conflict-free workload where the contention is purest.
#include <cstdio>
#include <memory>
#include <string>

#include "bench/common.hpp"
#include "src/control/factory.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 20));
  config.duration_s = cli.get_double("seconds", 10.0);
  cli.check_unknown();

  const char* const policies[] = {"rubic", "ebs", "f2c2", "greedy"};

  bench::section("Extension: mixed-policy pairs on rbt-readonly "
                 "(row = P1's policy, column = P2's; cell = speed-ups P1/P2)");
  std::printf("%-8s", "");
  for (const char* column : policies) std::printf(" %15s", column);
  std::printf("\n");
  for (const char* row : policies) {
    std::printf("%-8s", row);
    for (const char* column : policies) {
      const sim::ProcessSetup setups[2] = {
          {row, "rbt-readonly", 0.0, std::numeric_limits<double>::infinity()},
          {column, "rbt-readonly", 0.0,
           std::numeric_limits<double>::infinity()},
      };
      const auto aggregate = sim::run_experiment(config, setups);
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.1f/%.1f",
                    aggregate.processes[0].speedup.mean(),
                    aggregate.processes[1].speedup.mean());
      std::printf(" %15s", cell);
    }
    std::printf("\n");
  }

  // Headline: how badly does a greedy neighbour hurt RUBIC, and does RUBIC
  // hurt a RUBIC neighbour less than the baselines hurt theirs?
  const sim::ProcessSetup rubic_vs_greedy[2] = {
      {"rubic", "rbt-readonly", 0.0, std::numeric_limits<double>::infinity()},
      {"greedy", "rbt-readonly", 0.0,
       std::numeric_limits<double>::infinity()},
  };
  const sim::ProcessSetup rubic_vs_rubic[2] = {
      {"rubic", "rbt-readonly", 0.0, std::numeric_limits<double>::infinity()},
      {"rubic", "rbt-readonly", 0.0, std::numeric_limits<double>::infinity()},
  };
  const auto greedy_pair = sim::run_experiment(config, rubic_vs_greedy);
  const auto rubic_pair = sim::run_experiment(config, rubic_vs_rubic);
  std::printf(
      "\nRUBIC next to Greedy keeps %.0f%% of the speed-up it gets next to "
      "another RUBIC\n(a polite policy pays for its manners when the "
      "neighbour has none — OS-level isolation would be needed for hard "
      "guarantees)\n",
      100.0 * greedy_pair.processes[0].speedup.mean() /
          rubic_pair.processes[0].speedup.mean());
  return 0;
}

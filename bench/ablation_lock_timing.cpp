// Ablation (STM design axis, DESIGN.md extensions): encounter-time vs
// commit-time write locking, measured on the REAL runtime with real
// threads — tasks/s and abort breakdown per workload.
//
// Encounter-time (SwissTM) detects write/write conflicts at first write;
// commit-time (TL2) holds locks only across the commit. On a many-core
// host the difference shows in abort rates of write-heavy workloads; on
// this repository's 1-core container the preemption-driven interleavings
// still produce measurably different conflict mixes.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench/common.hpp"
#include "src/runtime/malleable_pool.hpp"
#include "src/util/cli.hpp"
#include "src/workloads/rbset_workload.hpp"
#include "src/workloads/vacation/vacation_workload.hpp"

using namespace rubic;

namespace {

struct Outcome {
  double tasks_per_second;
  stm::TxnStatsSnapshot stats;
};

template <typename MakeWorkload>
Outcome run_mode(stm::LockTiming timing, int threads, int ms,
                 MakeWorkload&& make_workload) {
  stm::RuntimeConfig config;
  config.lock_timing = timing;
  stm::Runtime rt(config);
  auto workload = make_workload(rt);
  runtime::PoolConfig pool_config;
  pool_config.pool_size = threads;
  pool_config.initial_level = threads;
  runtime::MalleablePool pool(rt, *workload, pool_config);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms / 4));
  const auto tasks_before = pool.total_completed();
  const auto stats_before = rt.aggregate_stats();
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  const auto tasks = pool.total_completed() - tasks_before;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  pool.stop();
  auto stats = rt.aggregate_stats();
  stats.commits -= stats_before.commits;
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(stm::AbortCause::kCount); ++i) {
    stats.aborts[i] -= stats_before.aborts[i];
  }
  std::string error;
  RUBIC_CHECK_MSG(workload->verify(&error), error.c_str());
  return {static_cast<double>(tasks) / seconds, stats};
}

void report(const char* name, const Outcome& encounter,
            const Outcome& commit) {
  auto line = [&](const char* mode, const Outcome& outcome) {
    const double total =
        static_cast<double>(outcome.stats.commits +
                            outcome.stats.total_aborts());
    std::printf("  %-14s %12.0f tasks/s   commits %10llu   aborts %8llu "
                "(%.2f%%)  [read %llu, write %llu, validate %llu]\n",
                mode, outcome.tasks_per_second,
                static_cast<unsigned long long>(outcome.stats.commits),
                static_cast<unsigned long long>(outcome.stats.total_aborts()),
                total > 0 ? 100.0 * outcome.stats.total_aborts() / total : 0.0,
                static_cast<unsigned long long>(outcome.stats.aborts[0]),
                static_cast<unsigned long long>(outcome.stats.aborts[1]),
                static_cast<unsigned long long>(outcome.stats.aborts[2]));
  };
  std::printf("%s:\n", name);
  line("encounter-time", encounter);
  line("commit-time", commit);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const auto threads = static_cast<int>(cli.get_int("threads", 4));
  const auto ms = static_cast<int>(cli.get_int("ms", 500));
  cli.check_unknown();

  bench::section("Ablation: write-lock timing on the real runtime (" +
                 std::to_string(threads) + " threads)");

  const auto make_rbset = [](stm::Runtime& rt) {
    workloads::RbSetParams params;
    params.initial_size = 4096;
    params.lookup_pct = 50;  // write-heavy variant
    return std::make_unique<workloads::RbSetWorkload>(rt, params);
  };
  report("rbset (50% updates)",
         run_mode(stm::LockTiming::kEncounterTime, threads, ms, make_rbset),
         run_mode(stm::LockTiming::kCommitTime, threads, ms, make_rbset));

  const auto make_vacation = [](stm::Runtime& rt) {
    auto params = workloads::vacation::VacationParams::high_contention();
    params.rows_per_relation = 512;
    params.customers = 512;
    return std::make_unique<workloads::vacation::VacationWorkload>(rt,
                                                                   params);
  };
  report("vacation (high contention)",
         run_mode(stm::LockTiming::kEncounterTime, threads, ms, make_vacation),
         run_mode(stm::LockTiming::kCommitTime, threads, ms, make_vacation));
  return 0;
}

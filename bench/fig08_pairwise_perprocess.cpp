// Figure 8: per-process metrics of the pairwise co-location — (a) each
// process's speed-up, (b) the standard deviation of its allocation across
// the 50 repetitions, (c) its mean thread count.
//
// Paper claims: Greedy gives RBT its highest speed-up while crushing its
// counterpart; RUBIC trades a sliver of the scalable process's speed-up for
// a large gain on the less scalable one (proportional fairness); RUBIC has
// the lowest allocation std-dev, F2C2 the highest; under F2C2 Vacation's
// level escapes past the context count.
#include <cstdio>
#include <string>

#include "bench/common.hpp"
#include "src/sim/experiment.hpp"
#include "src/util/cli.hpp"

using namespace rubic;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  sim::ExperimentConfig config;
  config.repetitions = static_cast<int>(cli.get_int("reps", 50));
  config.duration_s = cli.get_double("seconds", 10.0);
  config.contexts = static_cast<int>(cli.get_int("contexts", 64));
  cli.check_unknown();

  const char* const pairs[3][2] = {
      {"intruder", "vacation"}, {"intruder", "rbt"}, {"vacation", "rbt"}};
  const auto policies = control::evaluated_policies();

  // aggregates[pair][policy]
  std::vector<std::vector<sim::ExperimentAggregate>> aggregates(3);
  for (int p = 0; p < 3; ++p) {
    for (const auto policy : policies) {
      aggregates[static_cast<std::size_t>(p)].push_back(
          sim::run_pair(config, std::string(policy), pairs[p][0], pairs[p][1]));
    }
  }

  const auto print_metric = [&](const char* title, auto field) {
    bench::section(title);
    for (int p = 0; p < 3; ++p) {
      std::printf("pair %s/%s:\n", pairs[p][0], pairs[p][1]);
      std::printf("  %-12s %14s %14s\n", "policy", pairs[p][0], pairs[p][1]);
      for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto& aggregate = aggregates[static_cast<std::size_t>(p)][i];
        std::printf("  %-12s %14.2f %14.2f\n",
                    std::string(policies[i]).c_str(),
                    field(aggregate.processes[0]),
                    field(aggregate.processes[1]));
      }
    }
  };

  print_metric("Figure 8a: per-process speed-up",
               [](const sim::ProcessAggregate& process) {
                 return process.speedup.mean();
               });
  print_metric(
      "Figure 8b: allocation std-dev across repetitions (lower = stabler)",
      [](const sim::ProcessAggregate& process) {
        return process.mean_level.stddev();
      });
  print_metric("Figure 8c: per-process mean thread count",
               [](const sim::ProcessAggregate& process) {
                 return process.mean_level.mean();
               });

  bench::section("Quoted claims");
  // Proportional fairness: compare RBT's counterpart speed-ups, RUBIC vs EBS
  // on the Int/RBT pair (paper: "1% of RBT's speed-up in exchange for 10%
  // improvement in Intruder").
  const std::size_t ebs_index = 3, rubic_index = 4;  // factory order
  const auto& int_rbt_ebs = aggregates[1][ebs_index];
  const auto& int_rbt_rubic = aggregates[1][rubic_index];
  std::printf(
      "Int/RBT — RUBIC vs EBS: intruder %+.1f%%, rbt %+.1f%%"
      "  (paper: RUBIC sacrifices a little RBT for a big intruder gain)\n",
      100.0 * (int_rbt_rubic.processes[0].speedup.mean() /
                   int_rbt_ebs.processes[0].speedup.mean() - 1.0),
      100.0 * (int_rbt_rubic.processes[1].speedup.mean() /
                   int_rbt_ebs.processes[1].speedup.mean() - 1.0));
  double rubic_sd = 0, f2c2_sd = 0;
  for (int p = 0; p < 3; ++p) {
    for (int side = 0; side < 2; ++side) {
      rubic_sd += aggregates[static_cast<std::size_t>(p)][rubic_index]
                      .processes[static_cast<std::size_t>(side)]
                      .mean_level.stddev();
      f2c2_sd += aggregates[static_cast<std::size_t>(p)][2]
                     .processes[static_cast<std::size_t>(side)]
                     .mean_level.stddev();
    }
  }
  std::printf("mean allocation std-dev: RUBIC %.2f vs F2C2 %.2f"
              "  (paper: RUBIC most stable, F2C2 least)\n",
              rubic_sd / 6.0, f2c2_sd / 6.0);
  return 0;
}

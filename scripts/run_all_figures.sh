#!/usr/bin/env bash
# Regenerates every figure of the paper plus the extension studies, with
# optional CSV traces, into an output directory.
#
# Usage: scripts/run_all_figures.sh [BUILD_DIR] [OUT_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
mkdir -p "$OUT_DIR"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

for bench in "$BUILD_DIR"/bench/*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  case "$name" in
    fig10_convergence)
      "$bench" --csv "$OUT_DIR/fig10" | tee "$OUT_DIR/$name.txt"
      ;;
    micro_*)
      "$bench" --benchmark_out="$OUT_DIR/$name.json" \
               --benchmark_out_format=json | tee "$OUT_DIR/$name.txt"
      ;;
    *)
      "$bench" | tee "$OUT_DIR/$name.txt"
      ;;
  esac
done

echo
echo "All outputs in $OUT_DIR/"

#!/usr/bin/env python3
"""Validate the nightly cross-backend bench grid for completeness and sanity.

The soak-nightly backend-grid job runs `rubic_bench --suite
micro_backend_compare --filter backend_<name>_` once per STM engine and
uploads one rubic-bench-results/v1 artifact per backend. A missing engine, a
bench that silently benchmarked zero work, or a filter that stopped matching
after a rename would all still produce a green bench step — this checker is
what turns those holes into a red nightly. It asserts that, across the given
result files, every (backend, metric) cell of the grid is present exactly
once, carries the full rep count, and holds a sane value (finite, positive,
below an absurdity ceiling).

Usage:
    check_backend_grid.py RESULTS.json [RESULTS.json ...]
        [--backends orec,norec,tl2,2plundo]
        [--metrics read1_ns,write1_ns,rmw8_ns,rbtree_lookup_ns]
        [--max-ns 1e7]

Exit code 0 when the grid is complete and sane; 1 with a per-cell diagnostic
on stderr otherwise.
"""

import argparse
import json
import math
import sys

SCHEMA = "rubic-bench-results/v1"

# Bench-name tokens, kept in sync with stm::known_backends()
# (src/stm/backend/backend.hpp) and the micro_backend_compare suite
# (tools/rubic_bench.cpp). The bench names abbreviate the orec_swiss engine
# to "orec" (backend_orec_rmw8_ns etc.); the other tokens match the
# runtime's backend names exactly.
DEFAULT_BACKENDS = ["orec", "norec", "tl2", "2plundo"]
DEFAULT_METRICS = ["read1_ns", "write1_ns", "rmw8_ns", "rbtree_lookup_ns"]


def fail(message):
    print(f"check_backend_grid: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="bench result JSON files")
    parser.add_argument("--backends", default=",".join(DEFAULT_BACKENDS))
    parser.add_argument("--metrics", default=",".join(DEFAULT_METRICS))
    parser.add_argument(
        "--max-ns",
        type=float,
        default=1e7,
        help="absurdity ceiling for any ns_per_op median (default 1e7)",
    )
    args = parser.parse_args()
    backends = [b for b in args.backends.split(",") if b]
    metrics = [m for m in args.metrics.split(",") if m]

    # cell name -> (median, reps, source file)
    cells = {}
    errors = 0
    for path in args.results:
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            return fail(f"cannot read {path}: {exc}")
        if data.get("schema") != SCHEMA:
            return fail(
                f"{path}: schema {data.get('schema')!r} != {SCHEMA!r}")
        reps = data.get("reps")
        if not isinstance(reps, int) or reps < 1:
            return fail(f"{path}: bad reps {reps!r}")
        for entry in data.get("results", []):
            name = entry.get("name", "")
            if not name.startswith("backend_"):
                continue
            if name in cells:
                errors += fail(
                    f"{path}: duplicate cell {name} "
                    f"(already seen in {cells[name][2]})")
                continue
            values = entry.get("values", [])
            if len(values) != reps:
                errors += fail(
                    f"{path}: {name} has {len(values)} values, "
                    f"expected reps={reps}")
            cells[name] = (entry.get("median"), reps, path)

    for backend in backends:
        for metric in metrics:
            name = f"backend_{backend}_{metric}"
            if name not in cells:
                errors += fail(f"missing grid cell {name}")
                continue
            median, _, path = cells[name]
            if not isinstance(median, (int, float)) or not math.isfinite(
                    median):
                errors += fail(f"{path}: {name} median {median!r} not finite")
            elif median <= 0.0:
                errors += fail(
                    f"{path}: {name} median {median} <= 0 "
                    "(benchmarked no work?)")
            elif median > args.max_ns:
                errors += fail(
                    f"{path}: {name} median {median} exceeds "
                    f"--max-ns {args.max_ns}")

    expected = {f"backend_{b}_{m}" for b in backends for m in metrics}
    for name, (_, _, path) in sorted(cells.items()):
        if name not in expected:
            errors += fail(
                f"{path}: unexpected cell {name} "
                "(backend list out of date?)")

    if errors:
        return 1
    print(
        f"check_backend_grid: OK — {len(backends)}x{len(metrics)} grid "
        f"complete across {len(args.results)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

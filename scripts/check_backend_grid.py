#!/usr/bin/env python3
"""Validate the nightly cross-backend bench grid for completeness and sanity.

The soak-nightly backend-grid job runs `rubic_bench --suite
micro_backend_compare --filter backend_<name>_` once per STM engine and
uploads one rubic-bench-results/v1 artifact per backend. A missing engine, a
bench that silently benchmarked zero work, or a filter that stopped matching
after a rename would all still produce a green bench step — this checker is
what turns those holes into a red nightly. It asserts that, across the given
result files, every (backend, metric) cell of the grid is present exactly
once, carries the full rep count, and holds a sane value (finite, positive,
below an absurdity ceiling).

With --synchro the checker validates the Synchrobench evaluation grid
instead: tools/rubic_synchro sweeps structure x backend (x update-ratio x
key-range x threads x controller) and emits cells named
synchro_<structure>_<backend>_u<u>_r<r>_t<t>_<controller>; the nightly
synchro-grid job must produce at least one sane cell (finite, positive
tasks/s median, full rep count) for every (structure, backend) pair.

Usage:
    check_backend_grid.py RESULTS.json [RESULTS.json ...]
        [--backends orec,norec,tl2,2plundo]
        [--metrics read1_ns,write1_ns,rmw8_ns,rbtree_lookup_ns]
        [--max-ns 1e7]
    check_backend_grid.py --synchro RESULTS.json [RESULTS.json ...]
        [--structures btree,hashmap,list,rbtree,skiplist]
        [--backends orec_swiss,norec,tl2,2plundo]

Exit code 0 when the grid is complete and sane; 1 with a per-cell diagnostic
on stderr otherwise.
"""

import argparse
import json
import math
import sys

SCHEMA = "rubic-bench-results/v1"

# Bench-name tokens, kept in sync with stm::known_backends()
# (src/stm/backend/backend.hpp) and the micro_backend_compare suite
# (tools/rubic_bench.cpp). The bench names abbreviate the orec_swiss engine
# to "orec" (backend_orec_rmw8_ns etc.); the other tokens match the
# runtime's backend names exactly.
DEFAULT_BACKENDS = ["orec", "norec", "tl2", "2plundo"]
DEFAULT_METRICS = ["read1_ns", "write1_ns", "rmw8_ns", "rbtree_lookup_ns"]

# Synchro-grid tokens, kept in sync with tds::known_structures()
# (src/tds/registry.hpp) and the full backend names the rubic_synchro cell
# namer uses (no orec abbreviation there).
DEFAULT_STRUCTURES = ["btree", "hashmap", "list", "rbtree", "skiplist"]
DEFAULT_SYNCHRO_BACKENDS = ["orec_swiss", "norec", "tl2", "2plundo"]


def fail(message):
    print(f"check_backend_grid: {message}", file=sys.stderr)
    return 1


def load_results(paths, prefix):
    """Collect (name -> (median, reps, path)) for cells with the prefix.

    Returns (cells, errors); schema and rep-count violations are diagnosed
    here so both grid modes share them.
    """
    cells = {}
    errors = 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            return None, fail(f"cannot read {path}: {exc}")
        if data.get("schema") != SCHEMA:
            return None, fail(
                f"{path}: schema {data.get('schema')!r} != {SCHEMA!r}")
        reps = data.get("reps")
        if not isinstance(reps, int) or reps < 1:
            return None, fail(f"{path}: bad reps {reps!r}")
        for entry in data.get("results", []):
            name = entry.get("name", "")
            if not name.startswith(prefix):
                continue
            if name in cells:
                errors += fail(
                    f"{path}: duplicate cell {name} "
                    f"(already seen in {cells[name][2]})")
                continue
            values = entry.get("values", [])
            if len(values) != reps:
                errors += fail(
                    f"{path}: {name} has {len(values)} values, "
                    f"expected reps={reps}")
            cells[name] = (entry.get("median"), reps, path)
    return cells, errors


def sane_median(name, median, path, ceiling=None):
    """Returns an error count for a non-finite/non-positive/absurd median."""
    if not isinstance(median, (int, float)) or not math.isfinite(median):
        return fail(f"{path}: {name} median {median!r} not finite")
    if median <= 0.0:
        return fail(
            f"{path}: {name} median {median} <= 0 (benchmarked no work?)")
    if ceiling is not None and median > ceiling:
        return fail(f"{path}: {name} median {median} exceeds {ceiling}")
    return 0


def check_synchro(args):
    structures = [s for s in args.structures.split(",") if s]
    backends = [b for b in args.backends.split(",") if b]
    cells, errors = load_results(args.results, "synchro_")
    if cells is None:
        return 1

    # Every (structure, backend) pair needs >= 1 cell, and every cell must
    # belong to a known pair — an unknown token means the registry and this
    # checker drifted apart.
    prefixes = {(s, b): f"synchro_{s}_{b}_" for s in structures
                for b in backends}
    matched = set()
    for name, (median, _, path) in sorted(cells.items()):
        owner = None
        for pair, prefix in prefixes.items():
            if name.startswith(prefix):
                owner = pair
                break
        if owner is None:
            errors += fail(
                f"{path}: unexpected cell {name} "
                "(structure/backend list out of date?)")
            continue
        matched.add(owner)
        errors += sane_median(name, median, path)
    for structure in structures:
        for backend in backends:
            if (structure, backend) not in matched:
                errors += fail(
                    f"missing synchro grid pair: no cell matches "
                    f"synchro_{structure}_{backend}_*")

    if errors:
        return 1
    print(
        f"check_backend_grid: OK — synchro {len(structures)}x{len(backends)} "
        f"grid covered by {len(cells)} cell(s) across "
        f"{len(args.results)} file(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", help="bench result JSON files")
    parser.add_argument("--backends", default=None)
    parser.add_argument("--metrics", default=",".join(DEFAULT_METRICS))
    parser.add_argument(
        "--synchro",
        action="store_true",
        help="validate rubic_synchro structure x backend cells instead of "
        "the micro_backend_compare grid",
    )
    parser.add_argument(
        "--structures", default=",".join(DEFAULT_STRUCTURES))
    parser.add_argument(
        "--max-ns",
        type=float,
        default=1e7,
        help="absurdity ceiling for any ns_per_op median (default 1e7)",
    )
    args = parser.parse_args()
    if args.synchro:
        if args.backends is None:
            args.backends = ",".join(DEFAULT_SYNCHRO_BACKENDS)
        return check_synchro(args)
    if args.backends is None:
        args.backends = ",".join(DEFAULT_BACKENDS)
    backends = [b for b in args.backends.split(",") if b]
    metrics = [m for m in args.metrics.split(",") if m]

    # cell name -> (median, reps, source file)
    cells, errors = load_results(args.results, "backend_")
    if cells is None:
        return 1

    for backend in backends:
        for metric in metrics:
            name = f"backend_{backend}_{metric}"
            if name not in cells:
                errors += fail(f"missing grid cell {name}")
                continue
            median, _, path = cells[name]
            errors += sane_median(name, median, path, ceiling=args.max_ns)

    expected = {f"backend_{b}_{m}" for b in backends for m in metrics}
    for name, (_, _, path) in sorted(cells.items()):
        if name not in expected:
            errors += fail(
                f"{path}: unexpected cell {name} "
                "(backend list out of date?)")

    if errors:
        return 1
    print(
        f"check_backend_grid: OK — {len(backends)}x{len(metrics)} grid "
        f"complete across {len(args.results)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two rubic_bench result files; fail on gated regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Reads two files produced by `rubic_bench --out` (schema
rubic-bench-results/v1) and compares the *median* of every metric present
in the baseline. Only metrics marked `"gate": true` in the baseline can
fail the comparison; ungated metrics (wall-clock scenario throughputs) are
reported for human eyes only.

A gated metric regresses when its median moves in the "worse" direction
(per its `better` field) by more than --threshold relative to the baseline
median. A gated baseline metric missing from the current run also fails:
silently dropping a benchmark must not pass the gate. Metrics new in the
current run are listed but never fail — the baseline refresh procedure is
documented in docs/benchmarks.md.

Exit codes: 0 ok, 1 regression (or missing gated metric), 2 usage/input
error.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "rubic-bench-results/v1"


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_compare: cannot read {path}: {exc}")
    if data.get("schema") != SCHEMA:
        sys.exit(
            f"bench_compare: {path}: schema {data.get('schema')!r} "
            f"!= {SCHEMA!r}"
        )
    return data


def relative_change(baseline: float, current: float, better: str) -> float:
    """Signed relative change, positive = worse, scaled by the baseline.

    For percent-style metrics the baseline median can legitimately be ~0
    (a perfectly unmeasurable overhead); guard the division and treat tiny
    baselines as "any small absolute value is fine".
    """
    if abs(baseline) < 1e-12:
        return 0.0 if abs(current) < 1e-9 else float("inf")
    change = (current - baseline) / abs(baseline)
    return change if better == "lower" else -change


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated relative regression of a gated median "
        "(default 0.15 = 15%%)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    base_results = {r["name"]: r for r in base.get("results", [])}
    curr_results = {r["name"]: r for r in curr.get("results", [])}

    print(
        f"baseline: {args.baseline} (suite {base.get('suite')}, "
        f"git {str(base.get('git_sha'))[:12]})"
    )
    print(
        f"current:  {args.current} (suite {curr.get('suite')}, "
        f"git {str(curr.get('git_sha'))[:12]})"
    )
    print(f"threshold: {args.threshold:.0%} on gated medians\n")

    header = (
        f"{'metric':<34} {'base':>10} {'curr':>10} {'change':>9} "
        f"{'gate':>5}  verdict"
    )
    print(header)
    print("-" * len(header))

    failures = []
    for name, b in base_results.items():
        gate = bool(b.get("gate"))
        c = curr_results.get(name)
        if c is None:
            verdict = "MISSING"
            if gate:
                failures.append(f"{name}: gated metric missing from current run")
            print(
                f"{name:<34} {b['median']:>10.4g} {'-':>10} {'-':>9} "
                f"{'yes' if gate else 'no':>5}  {verdict}"
            )
            continue
        change = relative_change(
            float(b["median"]), float(c["median"]), b.get("better", "lower")
        )
        regressed = gate and change > args.threshold
        if regressed:
            failures.append(
                f"{name}: median {b['median']:.4g} -> {c['median']:.4g} "
                f"({change:+.1%} worse, threshold {args.threshold:.0%})"
            )
        verdict = "REGRESSED" if regressed else "ok"
        shown = "inf" if change == float("inf") else f"{change:+.1%}"
        print(
            f"{name:<34} {b['median']:>10.4g} {c['median']:>10.4g} "
            f"{shown:>9} {'yes' if gate else 'no':>5}  {verdict}"
        )

    for name in curr_results:
        if name not in base_results:
            print(f"{name:<34} {'-':>10} {curr_results[name]['median']:>10.4g} "
                  f"{'-':>9} {'-':>5}  NEW (not gated)")

    if failures:
        print("\nFAIL: performance regression gate")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nOK: no gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate a rubic_soak report against the rubic-soak-report/v1 schema.

Beyond field shape, this enforces the report's internal consistency: the
top-level verdict must agree with the per-invariant verdicts and process
outcomes, every failed invariant must carry a violation timestamp and its
nearest telemetry snapshot must exist on the timeline, trouble delivery
timestamps may not precede their scheduled offsets, and the telemetry part
accounting must balance (expected == merged + missing + discarded).

Usage:
    check_soak.py REPORT.json [--expect-fail]

--expect-fail flips the verdict check for negative scenarios (e.g. the
committed violation_tamper.scn): the report must be well-formed AND say
passed=false. Exit code 0 when every check passes; 1 with a diagnostic on
stderr otherwise. CI runs this on the PR soak smoke and the nightly soak
(see .github/workflows/ci.yml and tests/CMakeLists.txt).
"""

import argparse
import json
import sys

SCHEMA = "rubic-soak-report/v1"
TELEMETRY_SCHEMA = "rubic-telemetry/v1"

OUTCOMES = {
    "not-started",
    "chaos-killed",
    "hung",
    "completed",
    "verify-failed",
    "crashed",
    "died",
}
BAD_OUTCOMES = {"hung", "crashed", "died", "verify-failed"}
TROUBLE_KINDS = {"kill", "freeze", "thaw"}
INVARIANT_KINDS = {
    "verified",
    "liveness",
    "slo_floor",
    "jain_min",
    "counter_max",
    "counter_min",
}


def fail(message):
    print(f"check_soak: {message}", file=sys.stderr)
    sys.exit(1)


def need(obj, key, kinds, where):
    value = obj.get(key)
    if not isinstance(value, kinds):
        fail(f"{where}: {key} is {value!r}, want {kinds}")
    return value


def check_scenario(doc):
    scenario = need(doc, "scenario", dict, "report")
    need(scenario, "name", str, "scenario")
    need(scenario, "seed", int, "scenario")
    for key in ("seconds", "tick_ms", "hung_after_ms"):
        if need(scenario, key, int, "scenario") <= 0:
            fail(f"scenario: {key} must be positive")
    for key in ("contexts", "pool"):
        if need(scenario, key, int, "scenario") < 0:
            fail(f"scenario: {key} must be non-negative")


def check_processes(doc):
    processes = need(doc, "processes", list, "report")
    if not processes:
        fail("report: no processes")
    for proc in processes:
        name = need(proc, "name", str, "process")
        where = f"process {name!r}"
        outcome = need(proc, "outcome", str, where)
        if outcome not in OUTCOMES:
            fail(f"{where}: unknown outcome {outcome!r}")
        need(proc, "pid", int, where)
        need(proc, "exit_code", int, where)
        need(proc, "signal", int, where)
        need(proc, "completed_on_bus", bool, where)
        need(proc, "tasks_per_second", (int, float), where)
        need(proc, "tasks_completed", int, where)
        started = need(proc, "started_at_ms", int, where)
        ended = need(proc, "ended_at_ms", int, where)
        if outcome == "not-started":
            if started >= 0:
                fail(f"{where}: not-started but started_at_ms={started}")
        elif started < 0:
            fail(f"{where}: outcome {outcome!r} but never started")
        if ended >= 0 and started >= 0 and ended < started:
            fail(f"{where}: ended_at_ms {ended} precedes started_at_ms {started}")
    return processes


def check_troubles(doc):
    for trouble in need(doc, "troubles", list, "report"):
        kind = need(trouble, "kind", str, "trouble")
        if kind not in TROUBLE_KINDS:
            fail(f"trouble: unknown kind {kind!r}")
        target = need(trouble, "target", str, "trouble")
        where = f"trouble {kind}@{target}"
        at_ms = need(trouble, "at_ms", int, where)
        applied = need(trouble, "applied_at_ms", int, where)
        delivered = need(trouble, "delivered", bool, where)
        if at_ms < 0:
            fail(f"{where}: negative at_ms")
        if delivered and applied < at_ms:
            fail(f"{where}: applied at {applied} before scheduled {at_ms}")


def check_timeline(doc):
    timeline = need(doc, "timeline", list, "report")
    snapshot_times = set()
    previous = -1
    for point in timeline:
        at_ms = need(point, "at_ms", int, "timeline point")
        if at_ms <= previous:
            fail(f"timeline: at_ms {at_ms} not strictly increasing")
        previous = at_ms
        snapshot_times.add(at_ms)
        if need(point, "live", int, "timeline point") < 0:
            fail(f"timeline {at_ms}: negative live count")
        for peer in need(point, "peers", list, f"timeline {at_ms}"):
            need(peer, "label", str, f"timeline {at_ms} peer")
            need(peer, "pid", int, f"timeline {at_ms} peer")
            need(peer, "heartbeat", int, f"timeline {at_ms} peer")
            need(peer, "done", bool, f"timeline {at_ms} peer")
    return snapshot_times


def check_invariants(doc, snapshot_times):
    verdicts = need(doc, "invariants", list, "report")
    all_passed = True
    for verdict in verdicts:
        kind = need(verdict, "kind", str, "invariant")
        if kind not in INVARIANT_KINDS:
            fail(f"invariant: unknown kind {kind!r}")
        where = f"invariant {kind}"
        need(verdict, "params", str, where)
        need(verdict, "detail", str, where)
        passed = need(verdict, "passed", bool, where)
        first = need(verdict, "first_violation_ms", int, where)
        nearest = need(verdict, "nearest_snapshot_ms", int, where)
        if passed:
            if first >= 0:
                fail(f"{where}: passed but first_violation_ms={first}")
        else:
            all_passed = False
            if first < 0:
                fail(f"{where}: failed without a violation timestamp")
            if not need(verdict, "detail", str, where):
                fail(f"{where}: failed without a detail message")
            if snapshot_times and nearest not in snapshot_times:
                fail(
                    f"{where}: nearest_snapshot_ms {nearest} names no "
                    f"timeline snapshot"
                )
    return all_passed


def check_telemetry(doc):
    telemetry = need(doc, "telemetry", dict, "report")
    enabled = need(telemetry, "enabled", bool, "telemetry")
    parts = need(telemetry, "parts", dict, "telemetry")
    counts = {
        key: need(parts, key, int, "telemetry.parts")
        for key in ("expected", "merged", "missing", "discarded")
    }
    for key, value in counts.items():
        if value < 0:
            fail(f"telemetry.parts: negative {key}")
    balance = counts["merged"] + counts["missing"] + counts["discarded"]
    if counts["expected"] != balance:
        fail(
            f"telemetry.parts: expected {counts['expected']} != "
            f"merged+missing+discarded {balance}"
        )
    if enabled:
        if telemetry.get("schema") != TELEMETRY_SCHEMA:
            fail(f"telemetry: schema is {telemetry.get('schema')!r}")
        if not isinstance(telemetry.get("merged"), list):
            fail("telemetry: merged metrics must be an array")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="rubic_soak --json output")
    parser.add_argument(
        "--expect-fail",
        action="store_true",
        help="require passed=false (negative scenarios)",
    )
    args = parser.parse_args()

    with open(args.report, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        fail(f"{args.report}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{args.report}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    check_scenario(doc)
    passed = need(doc, "passed", bool, "report")
    wall = need(doc, "wall_seconds", (int, float), "report")
    if wall < 0:
        fail("report: negative wall_seconds")

    processes = check_processes(doc)
    check_troubles(doc)
    snapshot_times = check_timeline(doc)
    invariants_passed = check_invariants(doc, snapshot_times)
    check_telemetry(doc)

    outcomes_ok = not any(p["outcome"] in BAD_OUTCOMES for p in processes)
    consistent = invariants_passed and outcomes_ok
    if passed != consistent:
        fail(
            f"report: passed={passed} but invariants_passed="
            f"{invariants_passed}, outcomes_ok={outcomes_ok}"
        )
    if args.expect_fail == passed:
        want = "passed=false" if args.expect_fail else "passed=true"
        fail(f"report: verdict is passed={passed}, want {want}")
    print(f"check_soak: OK ({args.report}: passed={passed})")


if __name__ == "__main__":
    main()

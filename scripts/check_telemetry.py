#!/usr/bin/env python3
"""Validate rubic telemetry artifacts.

Checks a JSON telemetry document against the rubic-telemetry/v1 schema and
(optionally) a Prometheus text exposition file against the exposition
grammar. Accepts either a raw snapshot (rubic_sim --metrics-out, the
Scraper's per-line output) or a rubic_colocate report whose "telemetry" key
embeds per-process and merged metric arrays — the format is auto-detected.

Usage:
    check_telemetry.py FILE.json [--prom FILE.prom]

Exit code 0 when every check passes; 1 with a diagnostic on stderr
otherwise. CI runs this after the telemetry smoke run (see
.github/workflows/ci.yml and tests/CMakeLists.txt).
"""

import argparse
import json
import re
import sys

SCHEMA = "rubic-telemetry/v1"

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# One line of Prometheus text exposition: comment, blank, or sample. The
# sample value accepts integers, floats, and the NaN/+Inf/-Inf tokens.
PROM_LINE_RE = re.compile(
    r"^(?:"
    r"#\s(?:HELP|TYPE)\s[a-zA-Z_:][a-zA-Z0-9_:]*\s.+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r"\s(?:[-+]?[0-9.eE+-]+|NaN|\+Inf|-Inf)"
    r")$"
)


def fail(message):
    print(f"check_telemetry: {message}", file=sys.stderr)
    sys.exit(1)


def check_metric(metric, where):
    if not isinstance(metric, dict):
        fail(f"{where}: metric is not an object")
    name = metric.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: metric missing name")
    mtype = metric.get("type")
    if mtype not in ("counter", "gauge", "histogram"):
        fail(f"{where}: {name}: bad type {mtype!r}")
    labels = metric.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        fail(f"{where}: {name}: labels must map strings to strings")
    if mtype == "counter":
        if not isinstance(metric.get("value"), int) or metric["value"] < 0:
            fail(f"{where}: {name}: counter value must be a non-negative int")
    elif mtype == "gauge":
        value = metric.get("value")
        if value is not None and not isinstance(value, (int, float)):
            fail(f"{where}: {name}: gauge value must be a number or null")
    else:
        count = metric.get("count")
        total = metric.get("sum")
        buckets = metric.get("buckets")
        if not isinstance(count, int) or count < 0:
            fail(f"{where}: {name}: histogram count must be a non-negative int")
        if not isinstance(total, int) or total < 0:
            fail(f"{where}: {name}: histogram sum must be a non-negative int")
        if not isinstance(buckets, list) or not all(
            isinstance(b, int) and b >= 0 for b in buckets
        ):
            fail(f"{where}: {name}: histogram buckets must be counts")
        if sum(buckets) != count:
            fail(f"{where}: {name}: bucket total {sum(buckets)} != count {count}")


def check_metrics_array(metrics, where):
    if not isinstance(metrics, list):
        fail(f"{where}: metrics must be an array")
    for metric in metrics:
        check_metric(metric, where)
    keys = [(m["name"], tuple(sorted(m.get("labels", {}).items()))) for m in metrics]
    if keys != sorted(keys):
        fail(f"{where}: metrics are not sorted by (name, labels)")
    if len(keys) != len(set(keys)):
        fail(f"{where}: duplicate metric identity")


def check_snapshot(doc, where):
    if doc.get("schema") != SCHEMA:
        fail(f"{where}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("ts_ns"), int):
        fail(f"{where}: ts_ns must be an integer")
    check_metrics_array(doc.get("metrics"), where)


def check_colocate_report(doc, path):
    telemetry = doc["telemetry"]
    if telemetry.get("schema") != SCHEMA:
        fail(f"{path}: telemetry.schema is {telemetry.get('schema')!r}")
    processes = telemetry.get("processes")
    if not isinstance(processes, list):
        fail(f"{path}: telemetry.processes must be an array")
    for entry in processes:
        if not isinstance(entry.get("pid"), int):
            fail(f"{path}: telemetry.processes entry missing pid")
        check_metrics_array(entry.get("metrics"), f"{path}: pid {entry['pid']}")
    check_metrics_array(telemetry.get("merged"), f"{path}: merged")
    if processes and not telemetry["merged"]:
        fail(f"{path}: merged section is empty despite per-process metrics")


def check_prometheus(path):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition file")
    for number, line in enumerate(lines, start=1):
        if line and not PROM_LINE_RE.match(line):
            fail(f"{path}:{number}: bad exposition line: {line!r}")
    samples = [line for line in lines if line and not line.startswith("#")]
    if not samples:
        fail(f"{path}: no samples in exposition file")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_file", help="snapshot or colocate report JSON")
    parser.add_argument("--prom", help="Prometheus exposition file to check")
    args = parser.parse_args()

    with open(args.json_file, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        fail(f"{args.json_file}: top level is not an object")
    if "telemetry" in doc:
        check_colocate_report(doc, args.json_file)
    else:
        check_snapshot(doc, args.json_file)
    if args.prom:
        check_prometheus(args.prom)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate rubic telemetry artifacts.

Checks a JSON telemetry document against the rubic-telemetry/v1 schema and
(optionally) a Prometheus text exposition file against the exposition
grammar. Accepts either a raw snapshot (rubic_sim --metrics-out, the
Scraper's per-line output) or a rubic_colocate report whose "telemetry" key
embeds per-process and merged metric arrays — the format is auto-detected.

Also validates rubic-contention/v1 documents (the contention profiler's
--contention-out files and the live /hotspots endpoint body) — pass one as
FILE.json (auto-detected by its schema key) or via --contention. A live
/metrics scrape is the same exposition text a .prom file holds, so CI curls
it to a file and passes it through --prom.

Usage:
    check_telemetry.py FILE.json [--prom FILE.prom] [--contention FILE.json]
    check_telemetry.py --prom live_metrics.txt --contention live_hotspots.json

Exit code 0 when every check passes; 1 with a diagnostic on stderr
otherwise. CI runs this after the telemetry smoke run and against the live
endpoint bodies during the chaos soak (see .github/workflows/ci.yml and
tests/CMakeLists.txt).
"""

import argparse
import json
import re
import sys

SCHEMA = "rubic-telemetry/v1"
CONTENTION_SCHEMA = "rubic-contention/v1"

CONTENTION_BACKENDS = {"orec_swiss", "norec", "tl2", "2plundo"}
CONTENTION_CAUSES = {
    "read_conflict",
    "write_conflict",
    "validation_failed",
    "doomed",
    "user_retry",
    "fault_injected",
}

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

# One line of Prometheus text exposition: comment, blank, or sample. The
# sample value accepts integers, floats, and the NaN/+Inf/-Inf tokens.
PROM_LINE_RE = re.compile(
    r"^(?:"
    r"#\s(?:HELP|TYPE)\s[a-zA-Z_:][a-zA-Z0-9_:]*\s.+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r"\s(?:[-+]?[0-9.eE+-]+|NaN|\+Inf|-Inf)"
    r")$"
)


def fail(message):
    print(f"check_telemetry: {message}", file=sys.stderr)
    sys.exit(1)


def check_metric(metric, where):
    if not isinstance(metric, dict):
        fail(f"{where}: metric is not an object")
    name = metric.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{where}: metric missing name")
    mtype = metric.get("type")
    if mtype not in ("counter", "gauge", "histogram"):
        fail(f"{where}: {name}: bad type {mtype!r}")
    labels = metric.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        fail(f"{where}: {name}: labels must map strings to strings")
    if mtype == "counter":
        if not isinstance(metric.get("value"), int) or metric["value"] < 0:
            fail(f"{where}: {name}: counter value must be a non-negative int")
    elif mtype == "gauge":
        value = metric.get("value")
        if value is not None and not isinstance(value, (int, float)):
            fail(f"{where}: {name}: gauge value must be a number or null")
    else:
        count = metric.get("count")
        total = metric.get("sum")
        buckets = metric.get("buckets")
        if not isinstance(count, int) or count < 0:
            fail(f"{where}: {name}: histogram count must be a non-negative int")
        if not isinstance(total, int) or total < 0:
            fail(f"{where}: {name}: histogram sum must be a non-negative int")
        if not isinstance(buckets, list) or not all(
            isinstance(b, int) and b >= 0 for b in buckets
        ):
            fail(f"{where}: {name}: histogram buckets must be counts")
        if sum(buckets) != count:
            fail(f"{where}: {name}: bucket total {sum(buckets)} != count {count}")


def check_metrics_array(metrics, where):
    if not isinstance(metrics, list):
        fail(f"{where}: metrics must be an array")
    for metric in metrics:
        check_metric(metric, where)
    keys = [(m["name"], tuple(sorted(m.get("labels", {}).items()))) for m in metrics]
    if keys != sorted(keys):
        fail(f"{where}: metrics are not sorted by (name, labels)")
    if len(keys) != len(set(keys)):
        fail(f"{where}: duplicate metric identity")


def check_snapshot(doc, where):
    if doc.get("schema") != SCHEMA:
        fail(f"{where}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("ts_ns"), int):
        fail(f"{where}: ts_ns must be an integer")
    check_metrics_array(doc.get("metrics"), where)


def check_colocate_report(doc, path):
    telemetry = doc["telemetry"]
    if telemetry.get("schema") != SCHEMA:
        fail(f"{path}: telemetry.schema is {telemetry.get('schema')!r}")
    processes = telemetry.get("processes")
    if not isinstance(processes, list):
        fail(f"{path}: telemetry.processes must be an array")
    for entry in processes:
        if not isinstance(entry.get("pid"), int):
            fail(f"{path}: telemetry.processes entry missing pid")
        check_metrics_array(entry.get("metrics"), f"{path}: pid {entry['pid']}")
    check_metrics_array(telemetry.get("merged"), f"{path}: merged")
    if processes and not telemetry["merged"]:
        fail(f"{path}: merged section is empty despite per-process metrics")


def check_contention(doc, path):
    if doc.get("schema") != CONTENTION_SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {CONTENTION_SCHEMA!r}")
    for key in ("ts_ns", "sampled", "dropped"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"{path}: {key} must be a non-negative integer")
    if not isinstance(doc.get("sample_every"), int) or doc["sample_every"] < 1:
        fail(f"{path}: sample_every must be a positive integer")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        fail(f"{path}: rows must be an array")
    total = 0
    for i, row in enumerate(rows):
        where = f"{path}: rows[{i}]"
        if not isinstance(row, dict):
            fail(f"{where}: not an object")
        stripe = row.get("stripe")
        if stripe is not None and (not isinstance(stripe, int) or stripe < 0):
            fail(f"{where}: stripe must be a non-negative integer or null")
        if row.get("backend") not in CONTENTION_BACKENDS:
            fail(f"{where}: unknown backend {row.get('backend')!r}")
        if row.get("cause") not in CONTENTION_CAUSES:
            fail(f"{where}: unknown cause {row.get('cause')!r}")
        for key in ("victim", "owner"):
            if not isinstance(row.get(key), str):
                fail(f"{where}: {key} must be a string")
        count = row.get("count")
        if not isinstance(count, int) or count < 1:
            fail(f"{where}: count must be a positive integer")
        total += count
    counts = [row["count"] for row in rows]
    if counts != sorted(counts, reverse=True):
        fail(f"{path}: rows are not sorted by count descending")
    # A live scrape reads tables concurrently with writers, so the sampled
    # header and the row total may disagree slightly — but never by much,
    # and an exit-time dump has them equal.
    if doc["sampled"] and total > 2 * doc["sampled"]:
        fail(f"{path}: row total {total} wildly exceeds sampled {doc['sampled']}")
    for key, fields in (("hotspots", ("stripe", "total")), ("pairs", ("count",))):
        view = doc.get(key)
        if not isinstance(view, list):
            fail(f"{path}: {key} must be an array")
        for i, entry in enumerate(view):
            if not isinstance(entry, dict):
                fail(f"{path}: {key}[{i}]: not an object")
            for field in fields:
                if not isinstance(entry.get(field), int) or entry[field] < 0:
                    fail(f"{path}: {key}[{i}]: {field} must be a non-negative int")


def check_prometheus(path):
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        fail(f"{path}: empty exposition file")
    for number, line in enumerate(lines, start=1):
        if line and not PROM_LINE_RE.match(line):
            fail(f"{path}:{number}: bad exposition line: {line!r}")
    samples = [line for line in lines if line and not line.startswith("#")]
    if not samples:
        fail(f"{path}: no samples in exposition file")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "json_file",
        nargs="?",
        help="snapshot, colocate report, or contention JSON (auto-detected)",
    )
    parser.add_argument("--prom", help="Prometheus exposition file to check")
    parser.add_argument(
        "--contention",
        help="rubic-contention/v1 file (--contention-out or /hotspots body)",
    )
    args = parser.parse_args()
    if not args.json_file and not args.prom and not args.contention:
        parser.error("nothing to check: pass a JSON file, --prom or --contention")

    if args.json_file:
        with open(args.json_file, encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            fail(f"{args.json_file}: top level is not an object")
        if doc.get("schema") == CONTENTION_SCHEMA:
            check_contention(doc, args.json_file)
        elif "telemetry" in doc:
            check_colocate_report(doc, args.json_file)
        else:
            check_snapshot(doc, args.json_file)
    if args.contention:
        with open(args.contention, encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict):
            fail(f"{args.contention}: top level is not an object")
        check_contention(doc, args.contention)
    if args.prom:
        check_prometheus(args.prom)
    print("check_telemetry: OK")


if __name__ == "__main__":
    main()
